// Package server is BlendHouse's network serving tier: an HTTP/JSON
// query server wrapping core.Engine, giving the engine the wire
// boundary the paper assumes (vector search served from virtual
// warehouses to "millions of users"). The layer cake per statement:
//
//	connection  → per-connection Session (SET statement_timeout, …)
//	admission   → semaphore + bounded wait queue, 429 sheds (admission.go)
//	deadline    → client timeout becomes a context deadline BEFORE the
//	              queue wait, and propagates into Engine.Query
//	execution   → core.Engine.Query (PR 2 context-first API)
//	encoding    → application/json, or NDJSON streaming for large results
//	errors      → the engine taxonomy mapped to distinct HTTP statuses
//	              with machine-readable bodies (status.go)
//
// Graceful drain (Server.Drain, wired to SIGTERM in cmd/blendhouse)
// stops accepting statements, answers new ones 503 DRAINING, and lets
// in-flight queries finish up to a drain timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"blendhouse/internal/core"
	"blendhouse/internal/exec"
	"blendhouse/internal/obs"
	"blendhouse/pkg/api"
)

// Backend executes statements for the server. Two implementations
// exist: a single core.Engine (the `serve` shard role, wrapped by
// engineBackend) and the scatter-gather coordinator (internal/coord,
// the `coordinate` role). The server machinery — sessions, admission,
// deadlines, tracing, streaming, error mapping — is identical either
// way; only statement execution differs.
type Backend interface {
	// Query parses and executes one statement (core.Engine.Query's
	// contract: errors match the core taxonomy sentinels).
	Query(ctx context.Context, stmt string, opts core.QueryOptions) (*exec.Result, error)
	// Info describes the node for GET /v1/info.
	Info() api.NodeInfo
}

// engineBackend adapts a core.Engine to the Backend interface.
type engineBackend struct{ e *core.Engine }

func (b engineBackend) Query(ctx context.Context, stmt string, opts core.QueryOptions) (*exec.Result, error) {
	return b.e.Query(ctx, stmt, opts)
}

func (b engineBackend) Info() api.NodeInfo {
	return api.NodeInfo{V: api.Version, Role: api.RoleServer, Tables: b.e.Tables()}
}

// Serving metrics (beyond the bh.server.admission.* family): one
// request counter + error counter + latency histogram per route, plus
// open-session and draining levels.
var (
	mSessions = obs.Default().Gauge("bh.server.sessions")
	mDraining = obs.Default().Gauge("bh.server.draining")
)

// serverLog is the access log: one INFO record per statement request
// with route, status, latency, queue wait, row count and — injected
// from the request context — the trace ID.
var serverLog = obs.Logger("server")

// maxRequestBody bounds one statement body (INSERT batches arrive as
// SQL text, so this is generous).
const maxRequestBody = 64 << 20

// Config assembles a Server.
type Config struct {
	// Engine executes the statements (the single-node `serve` role).
	// Exactly one of Engine and Backend must be set.
	Engine *core.Engine
	// Backend executes the statements when the node is not a plain
	// engine host (the coordinator role). Takes precedence over Engine.
	Backend Backend
	// Addr is the listen address (default "127.0.0.1:8428").
	Addr string
	// Admission sizes the admission controller (zero = defaults).
	Admission AdmissionConfig
	// DrainTimeout bounds graceful drain; queries still running after
	// it are force-closed (default 10s).
	DrainTimeout time.Duration
	// SessionTimeout seeds each new session's statement timeout
	// (0 = none; clients adjust with SET statement_timeout).
	SessionTimeout time.Duration
	// SessionMaxParallelism seeds each new session's fan-out override.
	SessionMaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8428"
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server hosts the query API over one backend (engine or
// coordinator).
type Server struct {
	cfg      Config
	backend  Backend
	adm      *Admission
	mux      *http.ServeMux
	draining atomic.Bool
	lc       *httpLifecycle

	// batchEngine is non-nil when the engine runs a batching scheduler:
	// SELECTs then skip per-statement admission (the scheduler acquires
	// one slot per formed group through the gate wired in New).
	batchEngine *core.Engine
}

// New builds a server (not yet listening; call Start, or mount
// Handler on a listener of your own).
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.Engine == nil {
			return nil, fmt.Errorf("server: one of Config.Engine or Config.Backend is required")
		}
		backend = engineBackend{cfg.Engine}
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, backend: backend, adm: NewAdmission(cfg.Admission)}
	if cfg.Backend == nil && cfg.Engine != nil && cfg.Engine.Batcher() != nil {
		// Batching mode: the scheduler admits groups, not statements, so
		// it gets the admission controller as its gate and the handler
		// routes SELECTs around the per-statement Acquire.
		s.batchEngine = cfg.Engine
		cfg.Engine.Batcher().SetGate(s.adm)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.statementHandler("query"))
	s.mux.HandleFunc("/v1/exec", s.statementHandler("exec"))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	return s, nil
}

// Handler returns the route handler (for tests and embedding). When
// mounted outside Start, requests fall back to one fresh session each
// — SET has no durable effect without per-connection contexts.
func (s *Server) Handler() http.Handler { return s.mux }

// Admission exposes the admission controller (tests, health).
func (s *Server) Admission() *Admission { return s.adm }

// Start binds the configured address and serves in the background.
// Bind errors return synchronously; later serve failures surface on
// Err.
func (s *Server) Start() error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ConnContext: func(ctx context.Context, c net.Conn) context.Context {
			return context.WithValue(ctx, sessionKey{},
				NewSession(s.cfg.SessionTimeout, s.cfg.SessionMaxParallelism))
		},
		ConnState: func(c net.Conn, st http.ConnState) {
			switch st {
			case http.StateNew:
				mSessions.Inc()
			case http.StateClosed, http.StateHijacked:
				mSessions.Dec()
			}
		},
	}
	lc, err := startHTTP(hs, s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lc = lc
	return nil
}

// Addr reports the bound address once started (resolves ":0").
func (s *Server) Addr() string {
	if s.lc == nil {
		return s.cfg.Addr
	}
	return s.lc.addr()
}

// Err delivers the serve loop's terminal error (nil after clean
// drain). Only valid after Start.
func (s *Server) Err() <-chan error { return s.lc.err }

// Drain gracefully shuts down: new statements are answered 503
// DRAINING immediately, the listener closes, and in-flight statements
// get up to Config.DrainTimeout to finish before being force-closed.
// Idempotent; concurrent callers share one shutdown.
func (s *Server) Drain() error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	mDraining.Set(1)
	if s.lc == nil {
		return nil
	}
	return s.lc.drain(s.cfg.DrainTimeout)
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Kill closes the listener and every open connection immediately — no
// drain, no 503s, in-flight statements see their connections reset.
// It exists so chaos tests and the cluster bench can model a shard
// dying abruptly (the kill -9 case) without forking a process.
func (s *Server) Kill() {
	s.draining.Store(true)
	if s.lc != nil {
		s.lc.kill()
	}
}

// sessionKey carries the per-connection *Session in request contexts.
type sessionKey struct{}

// sessionFrom returns the connection's session, or a throwaway one
// when the handler is mounted without ConnContext (httptest).
func (s *Server) sessionFrom(ctx context.Context) *Session {
	if sess, ok := ctx.Value(sessionKey{}).(*Session); ok {
		return sess
	}
	return NewSession(s.cfg.SessionTimeout, s.cfg.SessionMaxParallelism)
}

// handleHealth answers load balancers: 200 while serving, 503 once
// draining, with live admission levels either way.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, state := http.StatusOK, "ok"
	if s.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"in_flight": s.adm.InFlight(),
		"queued":    s.adm.Queued(),
	})
}

// handleInfo answers GET /v1/info with the node's role and catalog —
// the shard-role endpoint the coordinator (and operators) use to tell
// what kind of process answers at an address.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Info())
}

// statementHandler builds the handler shared by /v1/query and
// /v1/exec. The two routes run identical machinery but meter
// separately, so dashboards can split interactive reads from
// DDL/ingest traffic.
func (s *Server) statementHandler(route string) http.HandlerFunc {
	var (
		mReqs = obs.Default().Counter("bh.server." + route + ".total")
		mErrs = obs.Default().Counter("bh.server." + route + ".errors")
		mLat  = obs.Default().Histogram("bh.server.latency." + route)
	)
	return func(w http.ResponseWriter, r *http.Request) {
		mReqs.Inc()
		start := obs.Now()

		// Trace context: accept the client's X-BH-Trace-Id (pkg/client
		// keeps it stable across retries) or mint one, echo it in the
		// response header immediately, and carry it in the request
		// context so every layer's logs and the span tree share it.
		traceID := r.Header.Get(TraceIDHeader)
		if !obs.ValidTraceID(traceID) {
			traceID = obs.NewTraceID()
		}
		w.Header().Set(TraceIDHeader, traceID)
		ctx := obs.WithTraceID(r.Context(), traceID)

		status := http.StatusOK
		code := ""
		rows := -1
		var queueWait time.Duration
		defer func() {
			lat := time.Since(start)
			mLat.Observe(lat)
			attrs := []any{
				"route", route,
				"status", status,
				"latency_ms", float64(lat.Microseconds()) / 1000,
				"queue_wait_ms", float64(queueWait.Microseconds()) / 1000,
			}
			if code != "" {
				attrs = append(attrs, "code", code)
			}
			if rows >= 0 {
				attrs = append(attrs, "rows", rows)
			}
			serverLog.InfoContext(ctx, "request", attrs...)
		}()
		fail := func(err error) {
			mErrs.Inc()
			status, code = StatusFor(err)
			writeError(w, err, traceID)
		}
		badRequest := func(httpStatus int, wireCode, msg string) {
			mErrs.Inc()
			status, code = httpStatus, wireCode
			writeJSON(w, httpStatus, ErrorBody{Error: WireError{
				Code: wireCode, Message: msg, TraceID: traceID,
			}})
		}

		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			badRequest(http.StatusMethodNotAllowed, CodeBadRequest, "use POST with a JSON body")
			return
		}
		if s.draining.Load() {
			fail(ErrDraining)
			return
		}
		var req QueryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		if err := dec.Decode(&req); err != nil {
			badRequest(http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
			return
		}
		if strings.TrimSpace(req.Query) == "" {
			badRequest(http.StatusBadRequest, CodeBadRequest, `"query" must be a non-empty SQL statement`)
			return
		}
		// Version gate: 0 (field omitted, every pre-versioned client)
		// reads as version 1; anything newer than this build is refused
		// loudly instead of silently dropping fields it can't know about.
		if req.V > api.Version {
			badRequest(http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("wire version %d not supported (this server speaks ≤ %d)", req.V, api.Version))
			return
		}

		// SET statements mutate the session and never reach the engine
		// (or the admission queue — they are free).
		sess := s.sessionFrom(r.Context())
		if handled, msg, err := sess.HandleSet(req.Query); handled {
			if err != nil {
				badRequest(http.StatusBadRequest, CodeSession, err.Error())
				return
			}
			rows = 1
			s.writeResult(w, r, &resultPayload{Columns: []string{"status"}, Rows: [][]any{{msg}}}, start, traceID)
			return
		}

		// The statement deadline starts BEFORE the admission wait:
		// time spent queued counts against the client's budget, so a
		// saturated server times out instead of stretching latency.
		timeout := sess.Timeout()
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		maxPar := sess.MaxParallelism()
		if req.MaxParallelism > 0 {
			maxPar = req.MaxParallelism
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}

		// Batching: routed SELECTs skip per-statement admission — the
		// scheduler acquires one slot per formed group, so a group of N
		// queries occupies one engine slot, the throughput-multiplier
		// contract. Everything else (DML, DDL, SHOW, sessions that SET
		// batch = off) is admitted here as before.
		gated := s.batchEngine != nil && sess.Batch() && s.batchEngine.BatchRoutes(req.Query)
		var release func()
		var wait time.Duration
		if !gated {
			var err error
			release, wait, err = s.adm.AcquireTimed(ctx)
			queueWait = wait
			if err != nil {
				fail(queueErr(err))
				return
			}
		}
		res, err := s.backend.Query(ctx, req.Query, core.QueryOptions{
			MaxParallelism: maxPar,
			QueueWait:      wait,
			AllowPartial:   sess.AllowPartial(),
			DisableBatch:   !gated,
		})
		if release != nil {
			release()
		}
		if err != nil {
			fail(err)
			return
		}
		rows = len(res.Rows)
		s.writeResult(w, r, &resultPayload{Columns: res.Columns, Rows: res.Rows, Partial: res.Partial}, start, traceID)
	}
}

// queueErr maps an admission failure onto the response taxonomy: a
// deadline/cancel that fired while queued is the same class as one
// that fired mid-query (the statement just never got started).
func queueErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("server: %w (deadline fired while queued for admission)", core.ErrTimeout)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("server: %w (client went away while queued for admission)", core.ErrCanceled)
	}
	return err
}

// resultPayload is what writeResult encodes (the engine result, or a
// synthesized status row).
type resultPayload struct {
	Columns []string
	Rows    [][]any
	Partial bool
}

// writeResult encodes a successful result: NDJSON streaming when the
// client asked for it (Accept: application/x-ndjson), one JSON object
// otherwise.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res *resultPayload, start time.Time, traceID string) {
	if !strings.Contains(r.Header.Get("Accept"), NDJSONContentType) {
		writeJSON(w, http.StatusOK, QueryResponse{
			Columns:   res.Columns,
			Rows:      res.Rows,
			RowCount:  len(res.Rows),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			TraceID:   traceID,
			Partial:   res.Partial,
		})
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	if err := enc.Encode(StreamHeader{Columns: res.Columns, TraceID: traceID}); err != nil {
		return
	}
	for i, row := range res.Rows {
		if err := enc.Encode(row); err != nil {
			return // client went away; nothing left to signal
		}
		if fl != nil && (i+1)%256 == 0 {
			fl.Flush()
		}
	}
	_ = enc.Encode(StreamTrailer{
		Done:      true,
		RowCount:  len(res.Rows),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Partial:   res.Partial,
	})
	if fl != nil {
		fl.Flush()
	}
}
