package plan

import (
	"math"
	"testing"

	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/index"
	_ "blendhouse/internal/index/hnsw"
	"blendhouse/internal/lsm"
	"blendhouse/internal/sql"
	"blendhouse/internal/storage"
)

const pDim = 8

func planSchema() *storage.Schema {
	return &storage.Schema{Columns: []storage.ColumnDef{
		{Name: "id", Type: storage.Int64Type},
		{Name: "label", Type: storage.StringType},
		{Name: "score", Type: storage.Float64Type},
		{Name: "embedding", Type: storage.VectorType, Dim: pDim},
	}}
}

func planTable(t *testing.T, n int) *lsm.Table {
	t.Helper()
	tab, err := lsm.Create(storage.NewMemStore(), lsm.Options{
		Name: "t", Schema: planSchema(),
		IndexColumn: "embedding", IndexType: index.HNSW,
		SegmentRows: 1 << 20, PipelinedBuild: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Small(n, pDim, 2)
	b := storage.NewRowBatch(tab.Schema())
	for i := 0; i < n; i++ {
		b.Col("id").Ints = append(b.Col("id").Ints, int64(i))
		b.Col("label").Strs = append(b.Col("label").Strs, "x")
		b.Col("score").Floats = append(b.Col("score").Floats, float64(i)/float64(n))
		b.Col("embedding").Vecs = append(b.Col("embedding").Vecs, ds.Vectors.Row(i)...)
	}
	if err := tab.Insert(b); err != nil {
		t.Fatal(err)
	}
	return tab
}

func parseSelect(t *testing.T, src string) *sql.Select {
	t.Helper()
	st, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sql.Select)
}

func TestBuildLogicalHybrid(t *testing.T) {
	sel := parseSelect(t, `SELECT id, dist FROM t WHERE score >= 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) AS dist LIMIT 10 SETTINGS ef_search=99`)
	lg, err := BuildLogical(sel, planSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !lg.IsVectorQuery() || lg.K != 10 || lg.DistAlias != "dist" {
		t.Fatalf("lg = %+v", lg)
	}
	if len(lg.ScalarPreds) != 1 || lg.ScalarPreds[0].Column != "score" {
		t.Fatalf("preds = %+v", lg.ScalarPreds)
	}
	if !lg.TopKPushdown {
		t.Fatal("top-k pushdown not annotated")
	}
	if !lg.VectorPruned {
		t.Fatal("vector column should be pruned when not projected")
	}
	if lg.Params.Ef != 99 {
		t.Fatalf("ef = %d", lg.Params.Ef)
	}
	// Needed columns: id (projection) + score (predicate); embedding pruned.
	for _, c := range lg.NeededColumns {
		if c == "embedding" {
			t.Fatal("pruned column still fetched")
		}
	}
}

func TestBuildLogicalVectorProjected(t *testing.T) {
	sel := parseSelect(t, `SELECT id, embedding FROM t ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 5`)
	lg, err := BuildLogical(sel, planSchema())
	if err != nil {
		t.Fatal(err)
	}
	if lg.VectorPruned {
		t.Fatal("projected vector column must not be pruned")
	}
}

func TestBuildLogicalRangePushdown(t *testing.T) {
	sel := parseSelect(t, `SELECT id FROM t WHERE L2Distance(embedding, [1,2,3,4,5,6,7,8]) < 0.7 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`)
	lg, err := BuildLogical(sel, planSchema())
	if err != nil {
		t.Fatal(err)
	}
	if lg.Range == nil || !lg.RangePushdown || lg.Range.Radius != 0.7 {
		t.Fatalf("range = %+v", lg.Range)
	}
}

func TestBuildLogicalErrors(t *testing.T) {
	bad := []string{
		`SELECT nope FROM t LIMIT 1`,
		`SELECT id FROM t WHERE nope = 1`,
		`SELECT id FROM t ORDER BY L2Distance(label, [1]) LIMIT 1`,
		`SELECT id FROM t ORDER BY L2Distance(embedding, [1, 2]) LIMIT 1`, // dim mismatch
		`SELECT id FROM t WHERE L2Distance(embedding, [1,2,3,4,5,6,7,8]) < 0.5 ORDER BY CosineDistance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 1`,
	}
	for _, src := range bad {
		sel := parseSelect(t, src)
		if _, err := BuildLogical(sel, planSchema()); err == nil {
			t.Errorf("BuildLogical(%q) unexpectedly succeeded", src)
		}
	}
}

func TestCostModelRegimes(t *testing.T) {
	p := DefaultCostParams()
	// Tiny qualifying set (s small): brute force must win — the
	// paper's 99%-filtered workload where "both BlendHouse and Milvus
	// chose to use the brute force method".
	st, _ := Choose(CostInputs{N: 1_000_000, S: 0.001, K: 100, Beta: 0.01, Gamma: 0.013}, p)
	if st != BruteForce {
		t.Fatalf("s=0.001 chose %v, want brute-force", st)
	}
	// Nearly unfiltered (s≈1): post-filter wins (cheap ANN, trivial
	// filter) — the paper's 1%-selectivity case.
	st, _ = Choose(CostInputs{N: 1_000_000, S: 0.99, K: 100, Beta: 0.001, Gamma: 0.0013}, p)
	if st != PostFilter {
		t.Fatalf("s=0.99 chose %v, want post-filter", st)
	}
	// Middle selectivity with expensive post-filter amplification:
	// pre-filter should win somewhere; scan the range to confirm each
	// strategy is chosen at least once.
	seen := map[Strategy]bool{}
	for _, s := range []float64{0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 0.9, 0.999} {
		st, _ := Choose(CostInputs{N: 1_000_000, S: s, K: 100, Beta: 0.02, Gamma: 0.026}, p)
		seen[st] = true
	}
	if !seen[BruteForce] || !seen[PostFilter] {
		t.Fatalf("strategies seen: %v", seen)
	}
}

func TestCostMonotonicity(t *testing.T) {
	p := DefaultCostParams()
	in := CostInputs{N: 100000, S: 0.5, K: 10, Beta: 0.01, Gamma: 0.013}
	// Plan A cost grows with selectivity (more rows to distance).
	lo := CostA(CostInputs{N: in.N, S: 0.1, K: in.K, Beta: in.Beta, Gamma: in.Gamma}, p)
	hi := CostA(CostInputs{N: in.N, S: 0.9, K: in.K, Beta: in.Beta, Gamma: in.Gamma}, p)
	if hi <= lo {
		t.Fatal("CostA must grow with s")
	}
	// Plan C cost shrinks as selectivity grows (less amplification).
	cLo := CostC(CostInputs{N: in.N, S: 0.1, K: in.K, Beta: in.Beta, Gamma: in.Gamma}, p)
	cHi := CostC(CostInputs{N: in.N, S: 0.9, K: in.K, Beta: in.Beta, Gamma: in.Gamma}, p)
	if cHi >= cLo {
		t.Fatal("CostC must shrink with s")
	}
	// Zero-selectivity guard: no division blowup to Inf.
	if c := CostC(CostInputs{N: in.N, S: 0, K: in.K, Beta: in.Beta}, p); math.IsInf(c, 0) || math.IsNaN(c) {
		t.Fatalf("CostC(s=0) = %v", c)
	}
}

func TestCalibrateProducesSaneConstants(t *testing.T) {
	p := Calibrate(16)
	if p.Cd <= 0 || p.Cc <= 0 || p.Cp <= 0 || p.CScan <= 0 {
		t.Fatalf("calibration produced non-positive constants: %+v", p)
	}
	// An exact distance must cost more than a bitmap test.
	if p.Cd <= p.Cp {
		t.Fatalf("Cd (%v) should exceed Cp (%v)", p.Cd, p.Cp)
	}
}

func TestVisitFractions(t *testing.T) {
	beta, gamma := VisitFractions(struct {
		Ef, Nprobe, Nlist, N int
		Graph                bool
	}{Ef: 100, N: 10000, Graph: true})
	if beta != 0.01 || gamma <= beta {
		t.Fatalf("graph fractions: beta=%v gamma=%v", beta, gamma)
	}
	beta, _ = VisitFractions(struct {
		Ef, Nprobe, Nlist, N int
		Graph                bool
	}{Nprobe: 8, Nlist: 64, N: 10000})
	if beta != 0.125 {
		t.Fatalf("ivf beta = %v", beta)
	}
	// Clamped to 1.
	beta, gamma = VisitFractions(struct {
		Ef, Nprobe, Nlist, N int
		Graph                bool
	}{Ef: 50000, N: 100, Graph: true})
	if beta != 1 || gamma != 1 {
		t.Fatalf("unclamped fractions: %v %v", beta, gamma)
	}
}

func TestPlannerChoosesByCBO(t *testing.T) {
	tab := planTable(t, 3000)
	pl := NewPlanner(PlannerConfig{})
	// Unfiltered vector query.
	ph, err := pl.Plan(parseSelect(t, `SELECT id FROM t ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Strategy != PreFilter {
		t.Fatalf("pure vector query strategy = %v", ph.Strategy)
	}
	// Highly selective predicate (s tiny): brute force.
	ph, err = pl.Plan(parseSelect(t, `SELECT id FROM t WHERE id BETWEEN 0 AND 5 AND score >= 0.99 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) AS d LIMIT 10 SETTINGS ef_search=64`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Strategy != BruteForce {
		t.Fatalf("tiny-s strategy = %v (selectivity %v)", ph.Strategy, ph.Selectivity)
	}
	if ph.Selectivity > 0.01 {
		t.Fatalf("selectivity estimate = %v", ph.Selectivity)
	}
}

func TestPlannerCBODisabledDefaultsToPreFilter(t *testing.T) {
	tab := planTable(t, 2000)
	pl := NewPlanner(PlannerConfig{DisableCBO: true, DisableShortCircuit: true, DisablePlanCache: true})
	ph, err := pl.Plan(parseSelect(t, `SELECT id FROM t WHERE score >= 0.01 AND label = 'x' AND id >= 0 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Strategy != PreFilter {
		t.Fatalf("CBO-off strategy = %v, want pre-filter", ph.Strategy)
	}
}

func TestPlannerForceStrategy(t *testing.T) {
	tab := planTable(t, 1000)
	force := PostFilter
	pl := NewPlanner(PlannerConfig{ForceStrategy: &force, DisableShortCircuit: true, DisablePlanCache: true})
	ph, err := pl.Plan(parseSelect(t, `SELECT id FROM t WHERE score >= 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Strategy != PostFilter {
		t.Fatalf("forced strategy = %v", ph.Strategy)
	}
}

func TestPlanCacheHitsOnParameterChange(t *testing.T) {
	tab := planTable(t, 1000)
	pl := NewPlanner(PlannerConfig{DisableShortCircuit: true})
	// Three predicates make the query non-simple, exercising the cache.
	q1 := `SELECT id FROM t WHERE score >= 0.5 AND id >= 10 AND label = 'x' ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`
	q2 := `SELECT id FROM t WHERE score >= 0.9 AND id >= 500 AND label = 'x' ORDER BY L2Distance(embedding, [9,9,9,9,9,9,9,9]) LIMIT 50`
	if _, err := pl.Plan(parseSelect(t, q1), tab); err != nil {
		t.Fatal(err)
	}
	ph, err := pl.Plan(parseSelect(t, q2), tab)
	if err != nil {
		t.Fatal(err)
	}
	if !ph.FromCache {
		t.Fatal("structurally identical query should hit the plan cache")
	}
	hits, misses, _ := pl.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats: %d/%d", hits, misses)
	}
	// Different structure misses.
	q3 := `SELECT id FROM t WHERE score < 0.5 AND id >= 10 AND label = 'x' ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`
	ph, err = pl.Plan(parseSelect(t, q3), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.FromCache {
		t.Fatal("different op must not hit the cache")
	}
}

func TestShortCircuitPath(t *testing.T) {
	tab := planTable(t, 1000)
	pl := NewPlanner(PlannerConfig{})
	ph, err := pl.Plan(parseSelect(t, `SELECT id FROM t WHERE score >= 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if !ph.ShortCircuited {
		t.Fatal("simple query should short-circuit")
	}
	_, _, sc := pl.Stats()
	if sc != 1 {
		t.Fatalf("short circuits = %d", sc)
	}
	// Regex predicate disqualifies.
	ph, err = pl.Plan(parseSelect(t, `SELECT id FROM t WHERE label REGEXP 'x' ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.ShortCircuited {
		t.Fatal("regex query must not short-circuit")
	}
}

func TestFingerprintParameterization(t *testing.T) {
	a := parseSelect(t, `SELECT id FROM t WHERE score >= 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`)
	b := parseSelect(t, `SELECT id FROM t WHERE score >= 0.77 ORDER BY L2Distance(embedding, [8,7,6,5,4,3,2,1]) LIMIT 999`)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("parameter changes must not change the fingerprint")
	}
	c := parseSelect(t, `SELECT id FROM t WHERE score < 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("operator changes must change the fingerprint")
	}
	d := parseSelect(t, `SELECT id, label FROM t WHERE score >= 0.5 ORDER BY L2Distance(embedding, [1,2,3,4,5,6,7,8]) LIMIT 10`)
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("projection changes must change the fingerprint")
	}
}

func TestScalarOnlyQuery(t *testing.T) {
	tab := planTable(t, 500)
	pl := NewPlanner(PlannerConfig{})
	ph, err := pl.Plan(parseSelect(t, `SELECT id FROM t WHERE score >= 0.5 LIMIT 10`), tab)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Logical.IsVectorQuery() {
		t.Fatal("scalar query misclassified as vector query")
	}
}
