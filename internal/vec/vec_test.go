package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestL2SquaredKnown(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := L2Squared(a, b); got != 25 {
		t.Fatalf("L2Squared = %v, want 25", got)
	}
}

func TestL2SquaredZeroForIdentical(t *testing.T) {
	a := []float32{0.5, -1.25, 3.75, 2, 9, -0.125, 4, 1}
	if got := L2Squared(a, a); got != 0 {
		t.Fatalf("L2Squared(a,a) = %v, want 0", got)
	}
}

func TestDotKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestUnrollTailHandling(t *testing.T) {
	// Lengths around the 4-way unroll boundary must all agree with a
	// naive implementation.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 9; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()
			b[i] = rng.Float32()
		}
		var wantL2, wantDot float64
		for i := range a {
			d := float64(a[i] - b[i])
			wantL2 += d * d
			wantDot += float64(a[i]) * float64(b[i])
		}
		if got := float64(L2Squared(a, b)); !almostEqual(got, wantL2, 1e-5) {
			t.Errorf("n=%d: L2Squared = %v, want %v", n, got, wantL2)
		}
		if got := float64(Dot(a, b)); !almostEqual(got, wantDot, 1e-5) {
			t.Errorf("n=%d: Dot = %v, want %v", n, got, wantDot)
		}
	}
}

func TestCosineDistanceProperties(t *testing.T) {
	a := []float32{1, 0, 0}
	if got := CosineDistance(a, a); !almostEqual(float64(got), 0, 1e-6) {
		t.Errorf("cosine(a,a) = %v, want 0", got)
	}
	b := []float32{-1, 0, 0}
	if got := CosineDistance(a, b); !almostEqual(float64(got), 2, 1e-6) {
		t.Errorf("cosine(a,-a) = %v, want 2", got)
	}
	c := []float32{0, 1, 0}
	if got := CosineDistance(a, c); !almostEqual(float64(got), 1, 1e-6) {
		t.Errorf("cosine(orthogonal) = %v, want 1", got)
	}
	zero := []float32{0, 0, 0}
	if got := CosineDistance(a, zero); got != 1 {
		t.Errorf("cosine(a,0) = %v, want 1", got)
	}
}

func TestCosineScaleInvariance(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float32, len(raw))
		b := make([]float32, len(raw))
		nonzero := false
		for i, v := range raw {
			a[i] = float32(v)
			b[i] = float32(v) * 3.5
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		return almostEqual(float64(CosineDistance(a, b)), 0, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestL2SymmetryProperty(t *testing.T) {
	f := func(x, y [8]int16) bool {
		a := make([]float32, 8)
		b := make([]float32, 8)
		for i := 0; i < 8; i++ {
			a[i] = float32(x[i]) / 128
			b[i] = float32(y[i]) / 128
		}
		return L2Squared(a, b) == L2Squared(b, a) && L2Squared(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// sqrt(L2Squared) must satisfy the triangle inequality.
	f := func(x, y, z [6]int8) bool {
		a, b, c := make([]float32, 6), make([]float32, 6), make([]float32, 6)
		for i := 0; i < 6; i++ {
			a[i], b[i], c[i] = float32(x[i]), float32(y[i]), float32(z[i])
		}
		ab := math.Sqrt(float64(L2Squared(a, b)))
		bc := math.Sqrt(float64(L2Squared(b, c)))
		ac := math.Sqrt(float64(L2Squared(a, c)))
		return ac <= ab+bc+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceMetricDispatch(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	if got := Distance(L2, a, b); got != L2Squared(a, b) {
		t.Errorf("L2 dispatch mismatch")
	}
	if got := Distance(InnerProduct, a, b); got != -Dot(a, b) {
		t.Errorf("IP dispatch mismatch: %v", got)
	}
	if got := Distance(Cosine, a, b); got != CosineDistance(a, b) {
		t.Errorf("cosine dispatch mismatch")
	}
}

func TestDistanceCheckedMismatch(t *testing.T) {
	if _, err := DistanceChecked(L2, []float32{1}, []float32{1, 2}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestParseMetric(t *testing.T) {
	cases := map[string]Metric{
		"L2Distance":     L2,
		"l2":             L2,
		"InnerProduct":   InnerProduct,
		"CosineDistance": Cosine,
	}
	for name, want := range cases {
		got, err := ParseMetric(name)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMetric("Hamming"); err == nil {
		t.Error("want error for unknown metric")
	}
}

func TestNormalize(t *testing.T) {
	a := []float32{3, 4}
	n := Normalize(a)
	if n != 5 {
		t.Fatalf("original norm = %v, want 5", n)
	}
	if !almostEqual(float64(Norm(a)), 1, 1e-6) {
		t.Fatalf("normalized norm = %v, want 1", Norm(a))
	}
	zero := []float32{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("zero vector should report norm 0")
	}
}

func TestDistancesTo(t *testing.T) {
	data := []float32{0, 0, 3, 4, 1, 0}
	q := []float32{0, 0}
	out := make([]float32, 3)
	DistancesTo(L2, q, data, 2, out)
	want := []float32{0, 25, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestArgMin(t *testing.T) {
	if ArgMin(nil) != -1 {
		t.Error("ArgMin(nil) should be -1")
	}
	if got := ArgMin([]float32{3, 1, 2}); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	// First minimum wins on ties.
	if got := ArgMin([]float32{2, 1, 1}); got != 1 {
		t.Errorf("ArgMin tie = %d, want 1", got)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", m.Rows())
	}
	m.SetRow(1, []float32{1, 2, 3})
	if got := m.Row(1); got[2] != 3 {
		t.Fatalf("Row(1) = %v", got)
	}
	m.Append([]float32{4, 5, 6})
	if m.Rows() != 3 || m.Row(2)[0] != 4 {
		t.Fatalf("after Append: rows=%d row2=%v", m.Rows(), m.Row(2))
	}
}

func TestMatrixAppendDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dim mismatch")
		}
	}()
	NewMatrix(1, 3).Append([]float32{1})
}

func TestAddScaleCopy(t *testing.T) {
	a := []float32{1, 2}
	Add(a, []float32{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Fatalf("Add: %v", a)
	}
	Scale(a, 2)
	if a[0] != 22 || a[1] != 44 {
		t.Fatalf("Scale: %v", a)
	}
	c := Copy(a)
	c[0] = 0
	if a[0] != 22 {
		t.Fatal("Copy must not alias")
	}
}
