package quant

import (
	"math"
	"math/rand"
	"testing"

	"blendhouse/internal/vec"
)

// The SQ integer/precomputed fast paths must agree with the
// decode-then-float reference within float rounding: the expansions
// are algebraically exact on decoded values, so only accumulation
// order differs.

func relClose(a, b, scale float64) bool {
	return math.Abs(a-b) <= 2e-3*(math.Abs(scale)+1)
}

func randRows(rng *rand.Rand, rows, dim int) []float32 {
	data := make([]float32, rows*dim)
	for i := range data {
		data[i] = rng.Float32()*6 - 3
	}
	return data
}

func TestSymQueryMatchesDecodeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dim := range []int{1, 3, 4, 7, 8, 31, 96} {
		data := randRows(rng, 64, dim)
		sq, err := TrainScalarUniform(data, dim)
		if err != nil {
			t.Fatal(err)
		}
		q := data[:dim]
		sym, ok := sq.NewSymQuery(q)
		if !ok {
			t.Fatal("uniform quantizer must produce a SymQuery")
		}
		decQ := make([]float32, dim)
		sq.Decode(sym.qc, decQ)
		code := make([]byte, dim)
		dec := make([]float32, dim)
		for r := 1; r < 64; r++ {
			sq.Encode(data[r*dim:(r+1)*dim], code)
			sum, sumSq := CodeStats(code)
			sq.Decode(code, dec)

			wantDot := vec.Dot(decQ, dec)
			gotDot := sym.DotDecoded(code, sum)
			if !relClose(float64(gotDot), float64(wantDot), float64(vec.Norm(decQ))*float64(vec.Norm(dec))) {
				t.Fatalf("dim=%d row=%d: DotDecoded %v != reference %v", dim, r, gotDot, wantDot)
			}

			wantCos := vec.CosineDistance(decQ, dec)
			gotCos := sym.CosineDecoded(code, sum, sumSq)
			if math.Abs(float64(gotCos-wantCos)) > 2e-3 {
				t.Fatalf("dim=%d row=%d: CosineDecoded %v != reference %v", dim, r, gotCos, wantCos)
			}
		}
	}
}

func TestDotTableMatchesDotToCode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range []int{1, 5, 8, 96} {
		data := randRows(rng, 32, dim)
		sq, err := TrainScalar(data, dim) // per-dimension ranges: non-uniform in general
		if err != nil {
			t.Fatal(err)
		}
		q := randRows(rng, 1, dim)
		w, bias := sq.DotTable(q)
		code := make([]byte, dim)
		for r := 0; r < 32; r++ {
			sq.Encode(data[r*dim:(r+1)*dim], code)
			want := sq.DotToCode(q, code)
			got := DotWithTable(w, bias, code)
			if !relClose(float64(got), float64(want), float64(want)) {
				t.Fatalf("dim=%d row=%d: DotWithTable %v != DotToCode %v", dim, r, got, want)
			}
		}
	}
}

func TestCosineToCodeMatchesDecodeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, dim := range []int{1, 5, 8, 96} {
		data := randRows(rng, 32, dim)
		sq, err := TrainScalar(data, dim)
		if err != nil {
			t.Fatal(err)
		}
		q := randRows(rng, 1, dim)
		qn := vec.Dot(q, q)
		code := make([]byte, dim)
		dec := make([]float32, dim)
		for r := 0; r < 32; r++ {
			sq.Encode(data[r*dim:(r+1)*dim], code)
			sq.Decode(code, dec)
			want := vec.CosineDistance(q, dec)
			got := sq.CosineToCode(q, code, qn)
			if math.Abs(float64(got-want)) > 2e-3 {
				t.Fatalf("dim=%d row=%d: CosineToCode %v != reference %v", dim, r, got, want)
			}
		}
	}
}

func TestCodeDotAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 3, 4, 5, 96} {
		a := make([]byte, n)
		b := make([]byte, n)
		for i := 0; i < n; i++ {
			a[i] = byte(rng.Intn(256))
			b[i] = byte(rng.Intn(256))
		}
		var wantDot, wantSum, wantSq int32
		for i := 0; i < n; i++ {
			wantDot += int32(a[i]) * int32(b[i])
			wantSum += int32(a[i])
			wantSq += int32(a[i]) * int32(a[i])
		}
		if got := CodeDot(a, b); got != wantDot {
			t.Fatalf("n=%d: CodeDot = %d, want %d", n, got, wantDot)
		}
		sum, sumSq := CodeStats(a)
		if sum != wantSum || sumSq != wantSq {
			t.Fatalf("n=%d: CodeStats = %d,%d want %d,%d", n, sum, sumSq, wantSum, wantSq)
		}
	}
}

// Regression: training on a constant dimension learns Step == 0.
// Encode must not divide by zero into NaN codes, Decode must
// round-trip to Min, and every distance path (including the new
// query-side fast paths) must stay finite.
func TestConstantDimensionStepZero(t *testing.T) {
	dim := 4
	// Column 0 and 2 constant, 1 and 3 varying.
	data := []float32{
		7, 1, -2, 0,
		7, 2, -2, 5,
		7, 3, -2, 9,
	}
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Step[0] != 0 || sq.Step[2] != 0 {
		t.Fatalf("constant dims should learn Step 0: %v", sq.Step)
	}
	code := make([]byte, dim)
	out := make([]float32, dim)
	sq.Encode(data[:dim], code)
	for d, c := range code {
		if c != code[d] || math.IsNaN(float64(float32(c))) {
			t.Fatalf("NaN-ish code at %d", d)
		}
	}
	sq.Decode(code, out)
	if out[0] != 7 || out[2] != -2 {
		t.Fatalf("constant dims must decode to Min: %v", out)
	}
	for _, v := range out {
		if math.IsNaN(float64(v)) {
			t.Fatalf("decode produced NaN: %v", out)
		}
	}
	if d := sq.CodeL2Squared(code, code); d != 0 || math.IsNaN(float64(d)) {
		t.Fatalf("self distance = %v", d)
	}
}

// Fully constant training data through the uniform quantizer: step 0
// everywhere. Every fast path must return finite values and the
// self-distances must be exact.
func TestConstantColumnUniformFastPaths(t *testing.T) {
	for _, c := range []float32{0, 3.5} {
		dim := 8
		data := make([]float32, 5*dim)
		for i := range data {
			data[i] = c
		}
		sq, err := TrainScalarUniform(data, dim)
		if err != nil {
			t.Fatal(err)
		}
		if sq.Step[0] != 0 {
			t.Fatalf("constant data should learn step 0, got %v", sq.Step[0])
		}
		q := data[:dim]
		code := make([]byte, dim)
		sq.Encode(q, code)
		sum, sumSq := CodeStats(code)

		if d := sq.L2ToCode(q, code); d != 0 {
			t.Fatalf("L2ToCode = %v", d)
		}
		sym, ok := sq.NewSymQuery(q)
		if !ok {
			t.Fatal("uniform quantizer must produce a SymQuery")
		}
		dot := sym.DotDecoded(code, sum)
		if math.IsNaN(float64(dot)) || !relClose(float64(dot), float64(c)*float64(c)*float64(dim), float64(c)*float64(c)*float64(dim)) {
			t.Fatalf("c=%v: DotDecoded = %v", c, dot)
		}
		cos := sym.CosineDecoded(code, sum, sumSq)
		if math.IsNaN(float64(cos)) {
			t.Fatalf("c=%v: CosineDecoded = NaN", c)
		}
		// Zero vectors are maximally distant (1); otherwise identical
		// vectors are at distance ~0.
		if c == 0 && cos != 1 {
			t.Fatalf("zero constant: cosine = %v, want 1", cos)
		}
		if c != 0 && math.Abs(float64(cos)) > 1e-6 {
			t.Fatalf("constant %v: self cosine distance = %v", c, cos)
		}
		// Non-uniform-path kernels on the same degenerate quantizer.
		w, bias := sq.DotTable(q)
		if got := DotWithTable(w, bias, code); math.IsNaN(float64(got)) {
			t.Fatal("DotWithTable NaN")
		}
		if got := sq.CosineToCode(q, code, vec.Dot(q, q)); math.IsNaN(float64(got)) {
			t.Fatal("CosineToCode NaN")
		}
	}
}
