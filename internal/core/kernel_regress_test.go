package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"blendhouse/internal/exec"
	"blendhouse/internal/plan"
	"blendhouse/internal/sql"
	"blendhouse/internal/vec"
)

// A query vector whose length differs from the column's declared
// dimension is the statement's fault: the SQL path must answer with
// the plan class (→ 4xx at the server), never a slice-bounds panic
// from a distance kernel.
func TestDimMismatchIsPlanError(t *testing.T) {
	e := newEngine(t, Config{})
	defer e.Close()
	seedImages(t, e)

	for _, src := range []string{
		"SELECT id FROM images ORDER BY L2Distance(embedding, [1.0, 2.0]) LIMIT 5",
		"SELECT id FROM images ORDER BY L2Distance(embedding, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]) LIMIT 5",
	} {
		_, err := e.Query(context.Background(), src, QueryOptions{})
		if !errors.Is(err, ErrPlan) {
			t.Fatalf("%s: err = %v, want ErrPlan", src, err)
		}
		if !strings.Contains(err.Error(), "dim") {
			t.Fatalf("%s: error should name the dimension mismatch: %v", src, err)
		}
	}
}

// Plans constructed directly (bypassing the planner's validation) must
// hit the executor's own dimension check. Before that check existed,
// an over-long query vector panicked inside the kernels instead of
// returning an error.
func TestDirectPlanDimMismatchNoPanic(t *testing.T) {
	e := newEngine(t, Config{})
	defer e.Close()
	seedImages(t, e)

	for _, strat := range []plan.Strategy{plan.BruteForce, plan.PreFilter, plan.PostFilter} {
		badQ := make([]float32, eDim+4) // longer than the column dim
		lg := &plan.Logical{
			Table:        "images",
			Projection:   []string{"id"},
			Distance:     &sql.DistanceExpr{Func: "L2Distance", Column: "embedding", Query: badQ},
			Metric:       vec.L2,
			K:            5,
			VectorColumn: "embedding",
		}
		_, err := e.Executor("images").Run(context.Background(), &plan.Physical{Logical: lg, Strategy: strat})
		if !errors.Is(err, exec.ErrInvalidQuery) {
			t.Fatalf("strategy %v: err = %v, want exec.ErrInvalidQuery", strat, err)
		}
	}
}

// Steady-state vector queries must not allocate proportionally to the
// scanned rows: the top-k heaps, candidate buffers and row-offset
// scratch are pooled, so per-query allocations stay at a small fixed
// overhead (parse, plan, result assembly). The budget has headroom
// over the measured count — it exists to catch the hot path regressing
// to per-row or per-segment allocation, not to pin an exact number.
func TestVectorQueryAllocsBounded(t *testing.T) {
	e := newEngine(t, Config{})
	defer e.Close()
	ds := seedImages(t, e)

	ctx := context.Background()
	src := "SELECT id FROM images ORDER BY L2Distance(embedding, " + vecLit(ds.Queries.Row(0)) + ") LIMIT 10"
	// Warm the segment index/column caches and the scratch pools.
	for i := 0; i < 3; i++ {
		if _, err := e.Query(ctx, src, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := e.Query(ctx, src, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// eN rows across segments: unpooled execution allocated O(rows).
	const budget = 250
	if allocs > budget {
		t.Fatalf("steady-state vector query allocates %v, budget %v — scan scratch is no longer pooled", allocs, budget)
	}
}
