package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"blendhouse/internal/obs"
)

// DebugHandler builds the operational mux — /metrics (Prometheus text
// exposition), /vars (flat JSON snapshot) and /debug/traces (recent
// finished query traces as JSON span dumps) over the obs registry,
// plus Go's pprof — on a dedicated mux (never http.DefaultServeMux, so
// nothing leaks onto the query server).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		obs.Default().WriteJSON(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		records := obs.Traces().Snapshot()
		dumps := make([]obs.TraceDump, 0, len(records))
		for _, rec := range records {
			dumps = append(dumps, rec.Dump())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"retained": len(dumps),
			"total":    obs.Traces().Total(),
			"traces":   dumps,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer hosts DebugHandler with the same lifecycle discipline as
// the query server: the bind error surfaces from NewDebug instead of
// dying silently inside a goroutine, and Drain shuts it down
// gracefully.
type DebugServer struct {
	lc *httpLifecycle
}

// NewDebug binds addr and starts serving the debug mux in the
// background.
func NewDebug(addr string) (*DebugServer, error) {
	lc, err := startHTTP(&http.Server{
		Handler:           DebugHandler(),
		ReadHeaderTimeout: 10 * time.Second,
	}, addr)
	if err != nil {
		return nil, err
	}
	return &DebugServer{lc: lc}, nil
}

// Addr reports the bound address (resolves ":0").
func (d *DebugServer) Addr() string { return d.lc.addr() }

// Err delivers the serve loop's terminal error (nil after clean
// drain).
func (d *DebugServer) Err() <-chan error { return d.lc.err }

// Drain gracefully shuts the debug server down (0 = wait
// indefinitely for in-flight scrapes).
func (d *DebugServer) Drain(timeout time.Duration) error {
	return d.lc.drain(timeout)
}
