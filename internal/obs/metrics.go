// Package obs is BlendHouse's engine-wide observability layer: a
// pure-stdlib metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with percentile readout) plus the
// lightweight per-query span tracing behind EXPLAIN ANALYZE. The
// paper's headline mechanisms — plan A/B/C selection, vector search
// serving (Fig 11), cache-aware preload, adaptive semantic pruning —
// all leave their fingerprints here at runtime instead of being
// visible only in the offline bench harness.
//
// Everything is safe for concurrent use. Tracing is strictly
// pay-as-you-go: every Trace/Span/CacheTally method is a no-op on a
// nil receiver, so untraced queries allocate nothing and touch no
// locks (see trace.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Now is the clock used by every obs timestamp (spans, latency
// observations). Callers that want shell-visible timings to agree with
// trace timings use the same function.
func Now() time.Time { return time.Now() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease) — the shape
// used by level-style gauges such as in-flight request counts.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every latency histogram:
// bucket i counts observations with 2^i ns <= d < 2^(i+1) ns, which
// spans sub-microsecond ticks to multi-hour outliers with no
// per-observation allocation.
const histBuckets = 64

// Histogram is a fixed-bucket (power-of-two nanosecond) latency
// histogram. Observations and reads are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Buckets snapshots the per-bucket counts. Bucket i holds observations
// with 2^i ns <= d < 2^(i+1) ns.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns the approximate q-quantile (0 < q <= 1) as the
// geometric midpoint of the bucket containing the rank. Zero when
// empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			lo := int64(1) << uint(i)
			return time.Duration(lo + lo/2)
		}
	}
	return h.Sum()
}

// KV is one snapshot entry.
type KV struct {
	Key   string
	Value int64
}

// Registry holds named metrics. Metrics are created on first use and
// never removed; RegisterFunc installs (or replaces) a callback gauge,
// which is how existing stat sources (cache.Stats(), planner stats)
// surface without a second bookkeeping path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

var std = NewRegistry()

// Default returns the process-wide registry that SHOW METRICS and the
// debug HTTP endpoint read.
func Default() *Registry { return std }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs a callback gauge evaluated at snapshot time,
// replacing any previous function under the same name.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot evaluates every metric and returns sorted key/value pairs.
// Histograms expand into .count, .sum_us, .p50_us and .p99_us entries.
func (r *Registry) Snapshot() []KV {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	var out []KV
	for k, c := range counters {
		out = append(out, KV{k, c.Value()})
	}
	for k, g := range gauges {
		out = append(out, KV{k, g.Value()})
	}
	for k, fn := range funcs {
		out = append(out, KV{k, fn()})
	}
	for k, h := range hists {
		out = append(out,
			KV{k + ".count", h.Count()},
			KV{k + ".sum_us", h.Sum().Microseconds()},
			KV{k + ".p50_us", h.Quantile(0.50).Microseconds()},
			KV{k + ".p99_us", h.Quantile(0.99).Microseconds()},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteText renders the snapshot as "key value" lines (the /metrics
// debug endpoint).
func (r *Registry) WriteText(w io.Writer) error {
	for _, kv := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %d\n", kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a flat JSON object (the /vars
// debug endpoint).
func (r *Registry) WriteJSON(w io.Writer) error {
	m := make(map[string]int64)
	for _, kv := range r.Snapshot() {
		m[kv.Key] = kv.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
