package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is the per-query span tree behind EXPLAIN ANALYZE. It is
// carried as a *Trace on the query path; a nil *Trace means tracing is
// off, and every method (including the tally accessors and all Span
// methods) is a no-op on a nil receiver — untraced queries pay zero
// allocations for the instrumentation.
type Trace struct {
	root *Span
	// ColCache tallies column-cache hit/miss/bypass per read.
	ColCache CacheTally
	// IdxCache tallies vector-index-cache hit/miss per load.
	IdxCache CacheTally
}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	return &Trace{root: newSpan(name)}
}

// Span returns the root span (nil on a nil trace).
func (t *Trace) Span() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t != nil {
		t.root.End()
	}
}

// ColTally returns the column-cache tally sink (nil on a nil trace).
func (t *Trace) ColTally() *CacheTally {
	if t == nil {
		return nil
	}
	return &t.ColCache
}

// IdxTally returns the index-cache tally sink (nil on a nil trace).
func (t *Trace) IdxTally() *CacheTally {
	if t == nil {
		return nil
	}
	return &t.IdxCache
}

// Lines renders the executed span tree plus the cache tallies as
// indented text lines (the body of EXPLAIN ANALYZE).
func (t *Trace) Lines() []string {
	if t == nil {
		return nil
	}
	var out []string
	t.root.appendLines(&out, 0)
	ch, cm, cb := t.ColCache.Values()
	ih, im, _ := t.IdxCache.Values()
	out = append(out, fmt.Sprintf("cache: column hits=%d misses=%d bypasses=%d | index hits=%d misses=%d",
		ch, cm, cb, ih, im))
	return out
}

// CacheTally accumulates cache hit/miss/bypass counts for one query.
// All methods are nil-receiver-safe.
type CacheTally struct {
	hits, misses, bypasses int64
	mu                     sync.Mutex
}

// Hit records a cache hit.
func (c *CacheTally) Hit() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// Miss records a cache miss.
func (c *CacheTally) Miss() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Bypass records an admission-control bypass.
func (c *CacheTally) Bypass() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.bypasses++
	c.mu.Unlock()
}

// Values reads the tally.
func (c *CacheTally) Values() (hits, misses, bypasses int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.bypasses
}

// Attr is one span attribute.
type Attr struct {
	Key string
	Val string
}

// Span is one timed node of a trace. Child creation and attribute
// writes are safe from concurrent goroutines (the VW scatters
// per-segment scans across workers).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: Now()}
}

// Child starts a new child span (nil-safe: returns nil on nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. Idempotent; later Ends keep the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Set records a string attribute.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.mu.Unlock()
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%d", v))
}

// SetFloat records a float attribute with compact formatting.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%.4g", v))
}

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%t", v))
}

// SetDur records a duration attribute.
func (s *Span) SetDur(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.Set(key, fmtDur(d))
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured duration (End's clock; zero if the
// span never ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a snapshot of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a snapshot of the attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the named attribute ("" when unset).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

func (s *Span) appendLines(out *[]string, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	name, dur := s.name, s.dur
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(name)
	b.WriteString("  (")
	b.WriteString(fmtDur(dur))
	b.WriteString(")")
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	*out = append(*out, b.String())
	for _, c := range children {
		c.appendLines(out, depth+1)
	}
}

// fmtDur renders a duration with sub-millisecond precision but without
// the noise of full nanosecond strings.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
