package coord

import (
	"sync"
	"time"
)

// breaker is a per-shard circuit breaker. A shard whose legs keep
// failing with down-class errors (connection refused, DRAINING,
// retries exhausted) trips the breaker open; while open, the
// coordinator skips the shard's legs outright instead of paying a
// dial-retry stall per query — dead shards are routed around, the
// breaker/retry half of the partial-result policy. After the cooldown
// one half-open probe is let through: success closes the breaker,
// failure re-opens it for another cooldown.
//
// This mirrors the storage-layer breaker of PR 5 at the cluster level;
// it is separate because the failure unit is a shard process, not a
// blob-store operation, and the probe is a real query leg rather than
// a synthetic health check.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int       // consecutive down-class failures
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a leg may be sent to the shard. While open it
// returns false until the cooldown elapses, then admits exactly one
// probe at a time; the probe's success/failure decides the next state.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if time.Now().Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a healthy leg: the breaker closes.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records a down-class leg failure; returns true when this
// failure tripped (or re-tripped) the breaker open.
func (b *breaker) failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	b.fails++
	if b.fails >= b.threshold {
		// Report the trip itself and a failed half-open probe; legs that
		// were already in flight when the breaker tripped just push the
		// cooldown out quietly.
		opened = b.fails == b.threshold || wasProbe
		b.openUntil = time.Now().Add(b.cooldown)
	}
	return opened
}

// open reports whether the breaker currently rejects legs.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && (time.Now().Before(b.openUntil) || b.probing)
}
