package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKKeepsSmallest(t *testing.T) {
	tk := NewTopK(3)
	for _, d := range []float32{5, 1, 9, 3, 7, 2} {
		tk.Push(Candidate{ID: int64(d * 10), Dist: d})
	}
	res := tk.Results()
	want := []float32{1, 2, 3}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i := range want {
		if res[i].Dist != want[i] {
			t.Fatalf("res[%d] = %v, want %v", i, res[i].Dist, want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(Candidate{1, 2.0})
	tk.Push(Candidate{2, 1.0})
	res := tk.Results()
	if len(res) != 2 || res[0].ID != 2 {
		t.Fatalf("res = %v", res)
	}
}

func TestTopKWouldAccept(t *testing.T) {
	tk := NewTopK(2)
	if !tk.WouldAccept(100) {
		t.Fatal("under-filled collector must accept anything")
	}
	tk.Push(Candidate{1, 1})
	tk.Push(Candidate{2, 2})
	if tk.WouldAccept(3) {
		t.Fatal("3 should not beat worst=2")
	}
	if !tk.WouldAccept(1.5) {
		t.Fatal("1.5 should beat worst=2")
	}
	if w, ok := tk.Worst(); !ok || w != 2 {
		t.Fatalf("Worst = %v, %v", w, ok)
	}
}

func TestTopKZeroK(t *testing.T) {
	tk := NewTopK(0) // clamps to 1
	tk.Push(Candidate{1, 5})
	tk.Push(Candidate{2, 3})
	res := tk.Results()
	if len(res) != 1 || res[0].ID != 2 {
		t.Fatalf("res = %v", res)
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(dists []float32, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		tk := NewTopK(k)
		for i, d := range dists {
			if d != d { // skip NaN
				return true
			}
			tk.Push(Candidate{ID: int64(i), Dist: d})
		}
		got := tk.Results()
		sorted := append([]float32{}, dists...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		n := k
		if n > len(sorted) {
			n = len(sorted)
		}
		if len(got) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got[i].Dist != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortCandidatesTieBreak(t *testing.T) {
	cs := []Candidate{{5, 1}, {2, 1}, {9, 0.5}}
	SortCandidates(cs)
	if cs[0].ID != 9 || cs[1].ID != 2 || cs[2].ID != 5 {
		t.Fatalf("sorted = %v", cs)
	}
}

func TestMergeTopK(t *testing.T) {
	a := []Candidate{{1, 0.1}, {2, 0.5}, {3, 0.9}}
	b := []Candidate{{4, 0.2}, {5, 0.6}}
	c := []Candidate{{6, 0.05}}
	merged := MergeTopK(3, a, b, c)
	wantIDs := []int64{6, 1, 4}
	if len(merged) != 3 {
		t.Fatalf("len = %d", len(merged))
	}
	for i, w := range wantIDs {
		if merged[i].ID != w {
			t.Fatalf("merged[%d].ID = %d, want %d", i, merged[i].ID, w)
		}
	}
}

// Regression: a later list's candidate with Dist == worst but a
// smaller ID must displace the kept candidate (SortCandidates breaks
// distance ties by ID). The pre-fix strict WouldAccept broke out of
// the list early and kept {11, 5} instead of {3, 5}.
func TestMergeTopKTieAtBoundary(t *testing.T) {
	a := []Candidate{{ID: 10, Dist: 1}, {ID: 11, Dist: 5}}
	b := []Candidate{{ID: 3, Dist: 5}, {ID: 20, Dist: 9}}
	merged := MergeTopK(2, a, b)
	var union []Candidate
	union = append(union, a...)
	union = append(union, b...)
	SortCandidates(union)
	want := union[:2]
	if len(merged) != 2 || merged[0] != want[0] || merged[1] != want[1] {
		t.Fatalf("merged = %v, want %v", merged, want)
	}
	if merged[1].ID != 3 {
		t.Fatalf("tie at k boundary kept ID %d, want 3", merged[1].ID)
	}
}

// With heavily quantized distances (many exact ties) a parallel-style
// merge must still equal the global sort — the determinism contract
// of the (Dist, ID) heap order.
func TestMergeTopKTiesEquivalentToGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var lists [][]Candidate
		var all []Candidate
		id := int64(0)
		for l := 0; l < 4; l++ {
			var list []Candidate
			for i := 0; i < 30; i++ {
				c := Candidate{ID: id, Dist: float32(rng.Intn(5))} // only 5 distinct distances
				id++
				list = append(list, c)
				all = append(all, c)
			}
			SortCandidates(list)
			lists = append(lists, list)
		}
		merged := MergeTopK(10, lists...)
		SortCandidates(all)
		for i := 0; i < 10; i++ {
			if merged[i] != all[i] {
				t.Fatalf("trial %d: merge diverges at %d: %v != %v", trial, i, merged[i], all[i])
			}
		}
	}
}

// TopK itself must keep the smaller IDs at distance ties regardless of
// insertion order.
func TestTopKTieBreakByID(t *testing.T) {
	perm := []Candidate{{ID: 7, Dist: 2}, {ID: 1, Dist: 2}, {ID: 4, Dist: 2}, {ID: 2, Dist: 2}, {ID: 9, Dist: 1}}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		tk := NewTopK(3)
		for _, c := range perm {
			tk.Push(c)
		}
		res := tk.Results()
		if res[0].ID != 9 || res[1].ID != 1 || res[2].ID != 2 {
			t.Fatalf("trial %d: res = %v, want IDs 9,1,2", trial, res)
		}
	}
}

func TestTopKResetAndAppendResults(t *testing.T) {
	tk := GetTopK(2)
	tk.Push(Candidate{ID: 1, Dist: 3})
	tk.Push(Candidate{ID: 2, Dist: 1})
	tk.Push(Candidate{ID: 3, Dist: 2})
	got := tk.AppendResults(nil)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("AppendResults = %v", got)
	}
	if tk.Len() != 0 {
		t.Fatalf("collector not emptied: len=%d", tk.Len())
	}
	// Reuse after reset: prior contents must not leak through.
	tk.Reset(1)
	tk.Push(Candidate{ID: 9, Dist: 7})
	got = tk.AppendResults(got[:0])
	if len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("after Reset: %v", got)
	}
	PutTopK(tk)
}

func TestMergeTopKEquivalentToGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var lists [][]Candidate
	var all []Candidate
	id := int64(0)
	for l := 0; l < 5; l++ {
		var list []Candidate
		for i := 0; i < 50; i++ {
			c := Candidate{ID: id, Dist: rng.Float32()}
			id++
			list = append(list, c)
			all = append(all, c)
		}
		SortCandidates(list)
		lists = append(lists, list)
	}
	merged := MergeTopK(20, lists...)
	SortCandidates(all)
	for i := 0; i < 20; i++ {
		if merged[i] != all[i] {
			t.Fatalf("merge diverges at %d: %v != %v", i, merged[i], all[i])
		}
	}
}
