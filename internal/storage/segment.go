package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultBlockRows is the granule size: the smallest unit of column
// data fetched from remote storage. The paper's READ_Opt "reduc[es]
// read granularity" — small blocks let a hybrid query fetch only the
// granules its (scattered) top-k rows live in instead of whole
// columns.
const DefaultBlockRows = 1024

// BlockMeta locates one granule inside a column blob.
type BlockMeta struct {
	Rows   int   `json:"rows"`
	Offset int64 `json:"offset"`
	Length int64 `json:"length"`
}

// ColumnMeta is the sparse ("mark") index of one column: where each
// granule lives.
type ColumnMeta struct {
	Name   string      `json:"name"`
	Blocks []BlockMeta `json:"blocks"`
}

// SegmentMeta describes one immutable segment: identity, row count,
// partition placement, per-column min/max statistics for pruning, the
// semantic centroid for similarity-based pruning, and the mark index.
type SegmentMeta struct {
	Name      string `json:"name"`
	Table     string `json:"table"`
	Rows      int    `json:"rows"`
	Level     int    `json:"level"` // LSM level (compaction depth)
	Partition string `json:"partition,omitempty"`
	Bucket    int    `json:"bucket"` // semantic bucket id; -1 when unbucketed

	// Centroid is the mean vector of the segment's rows (semantic
	// partition pruning compares it to the query vector).
	Centroid []float32 `json:"centroid,omitempty"`

	// Per-column statistics for scalar pruning.
	MinInt   map[string]int64   `json:"min_int,omitempty"`
	MaxInt   map[string]int64   `json:"max_int,omitempty"`
	MinFloat map[string]float64 `json:"min_float,omitempty"`
	MaxFloat map[string]float64 `json:"max_float,omitempty"`

	Columns []ColumnMeta `json:"columns"`

	// IndexedColumn is the vector column a per-segment ANN index was
	// built for; empty when the table has no vector index.
	IndexedColumn string `json:"indexed_column,omitempty"`
	IndexType     string `json:"index_type,omitempty"`
}

// Blob key layout under a table prefix.
func segPrefix(table, seg string) string       { return "tables/" + table + "/segments/" + seg + "/" }
func MetaKey(table, seg string) string         { return segPrefix(table, seg) + "meta.json" }
func ColumnKey(table, seg, col string) string  { return segPrefix(table, seg) + "col_" + col + ".bin" }
func IndexKey(table, seg, col string) string   { return segPrefix(table, seg) + "idx_" + col + ".bin" }
func DeleteBitmapKey(table, seg string) string { return segPrefix(table, seg) + "delete.bmp" }

// SegmentsPrefix is the listing prefix for a table's segments.
func SegmentsPrefix(table string) string { return "tables/" + table + "/segments/" }

// WriteSegment serializes batch into per-column blobs with a mark
// index, computes statistics and the centroid, writes meta.json, and
// returns the finished metadata. blockRows <= 0 selects
// DefaultBlockRows.
func WriteSegment(store BlobStore, meta SegmentMeta, batch *RowBatch, blockRows int) (*SegmentMeta, error) {
	if err := batch.Validate(); err != nil {
		return nil, err
	}
	if meta.Name == "" || meta.Table == "" {
		return nil, fmt.Errorf("storage: segment needs name and table")
	}
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	meta.Rows = batch.Len()
	if meta.Bucket == 0 && meta.Centroid == nil {
		// Preserve explicit bucket 0; callers set -1 for "none".
	}
	meta.MinInt = map[string]int64{}
	meta.MaxInt = map[string]int64{}
	meta.MinFloat = map[string]float64{}
	meta.MaxFloat = map[string]float64{}
	meta.Columns = nil

	for _, col := range batch.Cols {
		blob, blocks, err := encodeColumn(col, blockRows)
		if err != nil {
			return nil, fmt.Errorf("storage: encoding column %q: %w", col.Def.Name, err)
		}
		if err := store.Put(ColumnKey(meta.Table, meta.Name, col.Def.Name), blob); err != nil {
			return nil, fmt.Errorf("storage: writing column %q: %w", col.Def.Name, err)
		}
		meta.Columns = append(meta.Columns, ColumnMeta{Name: col.Def.Name, Blocks: blocks})
		collectStats(&meta, col)
	}
	if c := batch.Schema.VectorColumn(); c != nil && meta.Centroid == nil && batch.Len() > 0 {
		meta.Centroid = centroidOf(batch.Col(c.Name))
	}
	mj, err := json.Marshal(&meta)
	if err != nil {
		return nil, fmt.Errorf("storage: marshaling meta: %w", err)
	}
	if err := store.Put(MetaKey(meta.Table, meta.Name), mj); err != nil {
		return nil, fmt.Errorf("storage: writing meta: %w", err)
	}
	return &meta, nil
}

func collectStats(meta *SegmentMeta, col *ColumnData) {
	switch col.Def.Type {
	case Int64Type, DateTimeType:
		if len(col.Ints) == 0 {
			return
		}
		mn, mx := col.Ints[0], col.Ints[0]
		for _, v := range col.Ints {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		meta.MinInt[col.Def.Name] = mn
		meta.MaxInt[col.Def.Name] = mx
	case Float64Type:
		if len(col.Floats) == 0 {
			return
		}
		mn, mx := col.Floats[0], col.Floats[0]
		for _, v := range col.Floats {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		meta.MinFloat[col.Def.Name] = mn
		meta.MaxFloat[col.Def.Name] = mx
	}
}

func centroidOf(col *ColumnData) []float32 {
	n := col.Len()
	d := col.Def.Dim
	out := make([]float32, d)
	if n == 0 {
		return out
	}
	acc := make([]float64, d)
	for i := 0; i < n; i++ {
		v := col.Vector(i)
		for j := 0; j < d; j++ {
			acc[j] += float64(v[j])
		}
	}
	for j := 0; j < d; j++ {
		out[j] = float32(acc[j] / float64(n))
	}
	return out
}

// encodeColumn serializes a column into granules and returns the blob
// plus the mark index.
func encodeColumn(col *ColumnData, blockRows int) ([]byte, []BlockMeta, error) {
	var buf bytes.Buffer
	var blocks []BlockMeta
	n := col.Len()
	for start := 0; start < n || (n == 0 && start == 0); start += blockRows {
		end := start + blockRows
		if end > n {
			end = n
		}
		off := int64(buf.Len())
		if err := encodeBlock(&buf, col, start, end); err != nil {
			return nil, nil, err
		}
		blocks = append(blocks, BlockMeta{Rows: end - start, Offset: off, Length: int64(buf.Len()) - off})
		if n == 0 {
			break
		}
	}
	return buf.Bytes(), blocks, nil
}

func encodeBlock(buf *bytes.Buffer, col *ColumnData, start, end int) error {
	switch col.Def.Type {
	case Int64Type, DateTimeType:
		return binary.Write(buf, binary.LittleEndian, col.Ints[start:end])
	case Float64Type:
		return binary.Write(buf, binary.LittleEndian, col.Floats[start:end])
	case StringType:
		for _, s := range col.Strs[start:end] {
			if err := binary.Write(buf, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			buf.WriteString(s)
		}
		return nil
	case VectorType:
		d := col.Def.Dim
		return binary.Write(buf, binary.LittleEndian, col.Vecs[start*d:end*d])
	}
	return fmt.Errorf("storage: unknown column type %d", col.Def.Type)
}

func decodeBlock(data []byte, def ColumnDef, rows int, dst *ColumnData) error {
	r := bytes.NewReader(data)
	switch def.Type {
	case Int64Type, DateTimeType:
		vals := make([]int64, rows)
		if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
			return err
		}
		dst.Ints = append(dst.Ints, vals...)
	case Float64Type:
		vals := make([]float64, rows)
		if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
			return err
		}
		dst.Floats = append(dst.Floats, vals...)
	case StringType:
		for i := 0; i < rows; i++ {
			var n uint32
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
				return err
			}
			if int64(n) > int64(len(data)) {
				return fmt.Errorf("storage: corrupt string length %d", n)
			}
			s := make([]byte, n)
			if _, err := r.Read(s); err != nil {
				return err
			}
			dst.Strs = append(dst.Strs, string(s))
		}
	case VectorType:
		vals := make([]float32, rows*def.Dim)
		if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
			return err
		}
		dst.Vecs = append(dst.Vecs, vals...)
	default:
		return fmt.Errorf("storage: unknown column type %d", def.Type)
	}
	return nil
}

// ReadMeta loads and parses a segment's metadata.
func ReadMeta(store BlobStore, table, seg string) (*SegmentMeta, error) {
	data, err := store.Get(MetaKey(table, seg))
	if err != nil {
		return nil, err
	}
	var m SegmentMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: parsing meta of %s/%s: %w", table, seg, err)
	}
	return &m, nil
}

// SegmentReader reads columns of one segment, whole or block-wise.
type SegmentReader struct {
	Store  BlobStore
	Meta   *SegmentMeta
	Schema *Schema
}

// OpenSegment loads metadata and returns a reader.
func OpenSegment(store BlobStore, schema *Schema, table, seg string) (*SegmentReader, error) {
	m, err := ReadMeta(store, table, seg)
	if err != nil {
		return nil, err
	}
	return &SegmentReader{Store: store, Meta: m, Schema: schema}, nil
}

func (r *SegmentReader) colMeta(name string) (*ColumnMeta, *ColumnDef, error) {
	ci, def := r.Schema.Col(name)
	if ci < 0 {
		return nil, nil, fmt.Errorf("storage: column %q not in schema", name)
	}
	for i := range r.Meta.Columns {
		if r.Meta.Columns[i].Name == name {
			return &r.Meta.Columns[i], def, nil
		}
	}
	return nil, nil, fmt.Errorf("storage: column %q not in segment %s", name, r.Meta.Name)
}

// ReadColumn fetches an entire column with one blob read.
func (r *SegmentReader) ReadColumn(name string) (*ColumnData, error) {
	return r.ReadColumnCtx(nil, name)
}

// ReadColumnCtx is ReadColumn bounded by a context: a fired deadline or
// cancel aborts the (remote) blob read.
func (r *SegmentReader) ReadColumnCtx(ctx context.Context, name string) (*ColumnData, error) {
	cm, def, err := r.colMeta(name)
	if err != nil {
		return nil, err
	}
	blob, err := tallyGet(ctx, r.Store, ColumnKey(r.Meta.Table, r.Meta.Name, name))
	if err != nil {
		return nil, err
	}
	out := NewColumnData(*def)
	for _, b := range cm.Blocks {
		if int64(len(blob)) < b.Offset+b.Length {
			return nil, fmt.Errorf("storage: column %q blob shorter than mark index", name)
		}
		if err := decodeBlock(blob[b.Offset:b.Offset+b.Length], *def, b.Rows, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadRows fetches only the granules containing the requested row
// offsets (ascending duplicates allowed) and returns values aligned
// with rows. This is the reduced-granularity read path: remote reads
// are one GetRange per needed granule, not the whole column.
func (r *SegmentReader) ReadRows(name string, rows []int) (*ColumnData, error) {
	return r.ReadRowsCtx(nil, name, rows)
}

// ReadRowsCtx is ReadRows bounded by a context: each granule fetch
// checks for cancellation and aborts in-flight remote range reads.
func (r *SegmentReader) ReadRowsCtx(ctx context.Context, name string, rows []int) (*ColumnData, error) {
	cm, def, err := r.colMeta(name)
	if err != nil {
		return nil, err
	}
	// Map row -> block, gather needed blocks.
	type blockSpan struct {
		idx      int
		startRow int
	}
	var spans []blockSpan
	startRow := 0
	for bi, b := range cm.Blocks {
		spans = append(spans, blockSpan{bi, startRow})
		startRow += b.Rows
	}
	totalRows := startRow
	needed := map[int]bool{}
	for _, row := range rows {
		if row < 0 || row >= totalRows {
			return nil, fmt.Errorf("storage: row %d out of range [0,%d)", row, totalRows)
		}
		bi := sort.Search(len(spans), func(i int) bool {
			return spans[i].startRow > row
		}) - 1
		needed[bi] = true
	}
	// Fetch each needed block once.
	decoded := map[int]*ColumnData{}
	for bi := range needed {
		b := cm.Blocks[bi]
		blob, err := tallyGetRange(ctx, r.Store, ColumnKey(r.Meta.Table, r.Meta.Name, name), b.Offset, b.Length)
		if err != nil {
			return nil, err
		}
		cd := NewColumnData(*def)
		if err := decodeBlock(blob, *def, b.Rows, cd); err != nil {
			return nil, err
		}
		decoded[bi] = cd
	}
	// Assemble in request order.
	out := NewColumnData(*def)
	for _, row := range rows {
		bi := sort.Search(len(spans), func(i int) bool {
			return spans[i].startRow > row
		}) - 1
		out.AppendRow(decoded[bi], row-spans[bi].startRow)
	}
	return out, nil
}

// PruneByInt reports whether the segment can be skipped for a
// predicate lo <= col <= hi using min/max stats (missing stats never
// prune). Callers pass math.MinInt64 / math.MaxInt64 for open ends.
func (m *SegmentMeta) PruneByInt(col string, lo, hi int64) bool {
	mn, okMin := m.MinInt[col]
	mx, okMax := m.MaxInt[col]
	if !okMin || !okMax {
		return false
	}
	return mx < lo || mn > hi
}

// PruneByFloat is PruneByInt for float columns.
func (m *SegmentMeta) PruneByFloat(col string, lo, hi float64) bool {
	mn, okMin := m.MinFloat[col]
	mx, okMax := m.MaxFloat[col]
	if !okMin || !okMax {
		return false
	}
	return mx < lo || mn > hi
}

// OpenEndInt are the sentinels for open-ended integer ranges.
var OpenEndInt = struct{ Lo, Hi int64 }{math.MinInt64, math.MaxInt64}
