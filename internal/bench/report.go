// Package bench is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Section V). Each experiment is
// a function from a Config (scale, seed) to a Report — a titled table
// of rows matching what the paper plots — registered under the paper's
// artifact id ("table4", "fig9", ...). The cmd/bhbench binary and the
// root-level testing.B benchmarks both drive this package.
//
// Scales are reduced for a single-core box (see DESIGN.md §2): shapes
// — who wins, by roughly what factor, where crossovers fall — are the
// reproduction target, not absolute numbers.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records scale substitutions and the shape checks the
	// experiment asserts.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a note line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales an experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1 = quick single-core defaults).
	Scale float64
	// Seed drives all data generation.
	Seed int64
	// Queries caps the number of measured queries per point.
	Queries int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Queries <= 0 {
		c.Queries = 40
	}
	return c
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

// Experiment is a registered experiment runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Config) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Get returns an experiment by id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
