package quant

import (
	"math/rand"
	"testing"

	"blendhouse/internal/vec"
)

// Kernel microbenchmarks: the SQ8 integer kernel must not be slower
// than the float32 kernel, or HNSWSQ loses its reason to exist.
func BenchmarkFloat32L2Kernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 96)
	y := make([]float32, 96)
	for i := range x {
		x[i] = rng.Float32()
		y[i] = rng.Float32()
	}
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += vec.L2Squared(x, y)
	}
	_ = acc
}

func BenchmarkSQ8CodeL2Kernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 96*100)
	for i := range data {
		data[i] = rng.Float32()
	}
	sq, err := TrainScalarUniform(data, 96)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]byte, 96)
	y := make([]byte, 96)
	sq.Encode(data[:96], x)
	sq.Encode(data[96:192], y)
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += sq.CodeL2Squared(x, y)
	}
	_ = acc
}
