// Package lsm implements BlendHouse's LSM-style table engine over the
// blob store (paper §II-A, §III-B): tables are collections of sorted,
// immutable columnar segments; ingestion writes fresh L0 segments and
// builds a per-segment vector index in a pipelined fashion; updates
// are multi-version (new segment + delete bitmap over the old rows);
// background compaction merges small segments into larger ones and
// rebuilds their indexes as a side effect; and data management
// supports both scalar partitioning (PARTITION BY) and semantic
// similarity-based partitioning (CLUSTER BY ... INTO n BUCKETS).
package lsm

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"blendhouse/internal/bitset"
	"blendhouse/internal/index"
	"blendhouse/internal/storage"
	"blendhouse/internal/vec"
	"blendhouse/internal/wal"
)

// Options configures a table at creation.
type Options struct {
	Name   string
	Schema *storage.Schema

	// Vector index definition (the dialect's INDEX ... TYPE clause).
	// IndexColumn empty means no ANN index.
	IndexColumn string
	IndexType   index.Type
	IndexParams index.BuildParams
	// AutoIndex enables rule-based parameter selection per segment
	// size (paper §III-B "Auto index").
	AutoIndex bool
	// TuneOnCompaction runs the offline auto-tuner when compaction
	// builds a merged segment's index, refining the rule-based
	// parameters against sample queries drawn from the segment itself
	// (paper §III-B: "for background compaction tasks, we combine the
	// rule-based methods with auto-tuning tools"). Ingestion always
	// stays rule-only — tuning is too slow for the write path.
	TuneOnCompaction bool

	// PartitionBy lists scalar partition columns.
	PartitionBy []string
	// ClusterBuckets > 0 enables semantic partitioning into that many
	// k-means buckets over the vector column.
	ClusterBuckets int

	// SegmentRows caps rows per ingested segment (default 8192).
	SegmentRows int
	// BlockRows is the column granule size (default storage.DefaultBlockRows).
	BlockRows int
	// PipelinedBuild overlaps segment writing with index building
	// (BlendHouse's ingestion advantage in Table IV). Default true;
	// baselines disable it.
	PipelinedBuild bool

	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SegmentRows <= 0 {
		o.SegmentRows = 8192
	}
	if o.BlockRows <= 0 {
		o.BlockRows = storage.DefaultBlockRows
	}
	return o
}

// Table is a live LSM table handle. All mutating operations are
// serialized internally; reads see a consistent snapshot of the
// segment catalog.
type Table struct {
	opts  Options
	store storage.BlobStore

	mu        sync.RWMutex
	segments  map[string]*storage.SegmentMeta
	deletes   map[string]*bitset.Bitset // lazily loaded delete bitmaps
	centroids *vec.Matrix               // semantic bucket centroids; nil until trained
	nextSeg   int64
	hist      map[string]*Histogram // per-column histograms for the CBO

	// Real-time write path (nil / zero when the WAL is disabled).
	// mem is the active memtable; sealed holds memtables awaiting
	// flush (still query-visible); flushedLSN is the highest WAL LSN
	// whose effects are fully in segments — all guarded by t.mu.
	mem        *wal.Memtable
	sealed     []*wal.Memtable
	memGen     int64
	flushedLSN int64

	// walPins counts active PinWALTruncate holders (backups copying
	// the WAL tail); while nonzero the flusher skips TruncateBelow so
	// no tail blob vanishes mid-copy. Guarded by t.mu.
	walPins int

	// walRT holds the WAL runtime (log + flusher); atomic so the hot
	// insert path can branch without taking t.mu.
	walRT atomic.Pointer[walState]

	// dmlMu serializes DELETE application against memtable flushes so
	// a delete can never slip between a flush's snapshot and its
	// segment registration. Lock order: dmlMu before t.mu.
	dmlMu sync.Mutex

	// manifestMu serializes manifest writers; the blob Put happens
	// outside t.mu so readers are never blocked on remote I/O.
	manifestMu sync.Mutex
}

// manifest is the durable catalog blob.
type manifest struct {
	Options   manifestOptions       `json:"options"`
	Segments  []string              `json:"segments"`
	NextSeg   int64                 `json:"next_seg"`
	Centroids []float32             `json:"centroids,omitempty"`
	CentDim   int                   `json:"cent_dim,omitempty"`
	Hist      map[string]*Histogram `json:"histograms,omitempty"`

	// FlushedLSN is the recovery watermark: every WAL record with
	// LSN <= FlushedLSN is fully reflected in Segments; records above
	// it are replayed by Open. Updated atomically with Segments (one
	// manifest Put per flush), and only then is the WAL truncated.
	FlushedLSN int64 `json:"flushed_lsn,omitempty"`
}

// manifestOptions is the serializable subset of Options.
type manifestOptions struct {
	Name             string            `json:"name"`
	Schema           *storage.Schema   `json:"schema"`
	IndexColumn      string            `json:"index_column,omitempty"`
	IndexType        index.Type        `json:"index_type,omitempty"`
	IndexParams      index.BuildParams `json:"index_params"`
	AutoIndex        bool              `json:"auto_index"`
	TuneOnCompaction bool              `json:"tune_on_compaction"`
	PartitionBy      []string          `json:"partition_by,omitempty"`
	ClusterBuckets   int               `json:"cluster_buckets"`
	SegmentRows      int               `json:"segment_rows"`
	BlockRows        int               `json:"block_rows"`
	PipelinedBuild   bool              `json:"pipelined_build"`
	Seed             int64             `json:"seed"`
}

func manifestKey(table string) string { return "tables/" + table + "/manifest.json" }

// Create initializes a new table. It fails if the table already
// exists.
func Create(store storage.BlobStore, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	if opts.Name == "" {
		return nil, fmt.Errorf("lsm: table needs a name")
	}
	if err := opts.Schema.Validate(); err != nil {
		return nil, err
	}
	if opts.IndexColumn != "" {
		i, def := opts.Schema.Col(opts.IndexColumn)
		if i < 0 || def.Type != storage.VectorType {
			return nil, fmt.Errorf("lsm: index column %q is not a vector column", opts.IndexColumn)
		}
		if opts.IndexParams.Dim == 0 {
			opts.IndexParams.Dim = def.Dim
		}
		if opts.IndexParams.Dim != def.Dim {
			return nil, fmt.Errorf("lsm: index DIM %d != column dim %d", opts.IndexParams.Dim, def.Dim)
		}
	}
	for _, pc := range opts.PartitionBy {
		if i, _ := opts.Schema.Col(pc); i < 0 {
			return nil, fmt.Errorf("lsm: partition column %q not in schema", pc)
		}
	}
	if opts.ClusterBuckets > 0 && opts.Schema.VectorColumn() == nil {
		return nil, fmt.Errorf("lsm: CLUSTER BY requires a vector column")
	}
	if _, err := store.Get(manifestKey(opts.Name)); err == nil {
		return nil, fmt.Errorf("lsm: table %q already exists", opts.Name)
	} else if !storage.IsNotFound(err) {
		return nil, err
	}
	t := &Table{
		opts:     opts,
		store:    store,
		segments: map[string]*storage.SegmentMeta{},
		deletes:  map[string]*bitset.Bitset{},
		hist:     map[string]*Histogram{},
	}
	if err := t.saveManifest(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing table from its manifest.
func Open(store storage.BlobStore, name string) (*Table, error) {
	blob, err := store.Get(manifestKey(name))
	if err != nil {
		return nil, fmt.Errorf("lsm: opening table %q: %w", name, err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("lsm: parsing manifest of %q: %w", name, err)
	}
	t := &Table{
		opts: Options{
			Name: m.Options.Name, Schema: m.Options.Schema,
			IndexColumn: m.Options.IndexColumn, IndexType: m.Options.IndexType,
			IndexParams: m.Options.IndexParams, AutoIndex: m.Options.AutoIndex,
			TuneOnCompaction: m.Options.TuneOnCompaction,
			PartitionBy:      m.Options.PartitionBy, ClusterBuckets: m.Options.ClusterBuckets,
			SegmentRows: m.Options.SegmentRows, BlockRows: m.Options.BlockRows,
			PipelinedBuild: m.Options.PipelinedBuild, Seed: m.Options.Seed,
		},
		store:    store,
		segments: map[string]*storage.SegmentMeta{},
		deletes:  map[string]*bitset.Bitset{},
		nextSeg:  m.NextSeg,
		hist:     m.Hist,
	}
	if t.hist == nil {
		t.hist = map[string]*Histogram{}
	}
	if m.CentDim > 0 {
		t.centroids = &vec.Matrix{Dim: m.CentDim, Data: m.Centroids}
	}
	for _, seg := range m.Segments {
		sm, err := storage.ReadMeta(store, name, seg)
		if err != nil {
			return nil, fmt.Errorf("lsm: loading segment %s: %w", seg, err)
		}
		t.segments[seg] = sm
	}
	t.flushedLSN = m.FlushedLSN
	// Crash recovery: WAL records past the flushed watermark are the
	// acknowledged writes a crash interrupted — fold them into
	// segments before the table goes live. Runs even when the caller
	// won't re-enable the WAL, so no acknowledged write is ever
	// stranded in an unread log.
	if err := t.replayWAL(); err != nil {
		return nil, fmt.Errorf("lsm: recovering table %q: %w", name, err)
	}
	return t, nil
}

// replayWAL applies WAL records with LSN > flushedLSN directly to
// segments: consecutive inserts coalesce into one ingest batch, a
// delete cuts the run (replay must preserve LSN order), and the
// manifest + WAL are brought back in sync afterwards. Segment blobs
// are written and registered in memory as the log replays, but the
// manifest — the new segments AND the advanced watermark together —
// is saved exactly once at the end, mirroring flushOnce's atomic
// swap: a crash mid-recovery leaves the old manifest untouched, so
// the next Open replays the same records onto the same deterministic
// segment names instead of registering the rows twice.
func (t *Table) replayWAL() error {
	log, pending, err := wal.Open(t.store, t.opts.Name, t.opts.Schema, t.flushedLSN, 0)
	if err != nil {
		return err
	}
	if len(pending) == 0 {
		return nil
	}
	var buf *storage.RowBatch
	flushBuf := func() error {
		if buf == nil || buf.Len() == 0 {
			buf = nil
			return nil
		}
		b := buf
		buf = nil
		metas, err := t.writeBatchSegments(b)
		if err != nil {
			return err
		}
		t.mu.Lock()
		for _, m := range metas {
			t.segments[m.Name] = m
		}
		t.updateHistogramsLocked(b)
		t.mu.Unlock()
		return nil
	}
	for _, rec := range pending {
		switch rec.Type {
		case wal.RecInsert:
			if buf == nil {
				buf = storage.NewRowBatch(t.opts.Schema)
			}
			for i := 0; i < rec.Batch.Len(); i++ {
				buf.AppendRow(rec.Batch, i)
			}
		case wal.RecDelete:
			if err := flushBuf(); err != nil {
				return err
			}
			if _, err := t.deleteFromSegments(rec.DeleteCol, rec.DeleteKeys); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lsm: replaying unknown WAL record type %d", rec.Type)
		}
	}
	if err := flushBuf(); err != nil {
		return err
	}
	last := pending[len(pending)-1].LSN
	t.mu.Lock()
	t.flushedLSN = last
	t.mu.Unlock()
	if err := t.saveManifest(); err != nil {
		return err
	}
	return log.TruncateBelow(last)
}

// manifestBlobLocked marshals the catalog; caller holds t.mu.
func (t *Table) manifestBlobLocked() ([]byte, error) {
	m := manifest{
		Options: manifestOptions{
			Name: t.opts.Name, Schema: t.opts.Schema,
			IndexColumn: t.opts.IndexColumn, IndexType: t.opts.IndexType,
			IndexParams: t.opts.IndexParams, AutoIndex: t.opts.AutoIndex,
			TuneOnCompaction: t.opts.TuneOnCompaction,
			PartitionBy:      t.opts.PartitionBy, ClusterBuckets: t.opts.ClusterBuckets,
			SegmentRows: t.opts.SegmentRows, BlockRows: t.opts.BlockRows,
			PipelinedBuild: t.opts.PipelinedBuild, Seed: t.opts.Seed,
		},
		NextSeg:    t.nextSeg,
		Hist:       t.hist,
		FlushedLSN: t.flushedLSN,
	}
	for name := range t.segments {
		m.Segments = append(m.Segments, name)
	}
	if t.centroids != nil {
		m.Centroids = t.centroids.Data
		m.CentDim = t.centroids.Dim
	}
	return json.Marshal(&m)
}

// saveManifest persists the catalog. The snapshot happens under a
// read lock but the blob Put does not: on the latency-modeled
// RemoteStore that write is the slowest part, and holding t.mu across
// it would serialize every concurrent reader against remote I/O.
// manifestMu keeps writers ordered — each Put carries a snapshot at
// least as new as the previous one's.
func (t *Table) saveManifest() error {
	t.manifestMu.Lock()
	defer t.manifestMu.Unlock()
	t.mu.RLock()
	blob, err := t.manifestBlobLocked()
	t.mu.RUnlock()
	if err != nil {
		return err
	}
	return t.store.Put(manifestKey(t.opts.Name), blob)
}

// Name returns the table name.
func (t *Table) Name() string { return t.opts.Name }

// Schema returns the table schema.
func (t *Table) Schema() *storage.Schema { return t.opts.Schema }

// Options returns a copy of the table options.
func (t *Table) Options() Options { return t.opts }

// Store returns the backing blob store.
func (t *Table) Store() storage.BlobStore { return t.store }

// Segments snapshots the live segment metadata.
func (t *Table) Segments() []*storage.SegmentMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*storage.SegmentMeta, 0, len(t.segments))
	for _, m := range t.segments {
		out = append(out, m)
	}
	return out
}

// SegmentCount returns the number of live segments.
func (t *Table) SegmentCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segments)
}

// Rows returns the live row count (total minus deleted).
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for name, m := range t.segments {
		n += m.Rows
		if d := t.deletes[name]; d != nil {
			n -= d.Count()
		}
	}
	return n
}

// Centroids returns the semantic bucket centroids (nil before the
// first clustered ingest).
func (t *Table) Centroids() *vec.Matrix {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.centroids
}

// DeleteBitmap returns the segment's delete bitmap, loading it from
// the store on first use. A nil return means no rows are deleted.
func (t *Table) DeleteBitmap(seg string) (*bitset.Bitset, error) {
	return t.DeleteBitmapCtx(nil, seg)
}

// DeleteBitmapCtx is DeleteBitmap bounded by a context: a fired
// deadline aborts the (remote) blob read on a cache miss.
func (t *Table) DeleteBitmapCtx(ctx context.Context, seg string) (*bitset.Bitset, error) {
	t.mu.RLock()
	if d, ok := t.deletes[seg]; ok {
		t.mu.RUnlock()
		return d, nil
	}
	t.mu.RUnlock()
	blob, err := storage.GetCtx(ctx, t.store, storage.DeleteBitmapKey(t.opts.Name, seg))
	if storage.IsNotFound(err) {
		// Cache the miss: a segment with no deletions would otherwise pay
		// a remote round trip per query re-probing a blob that isn't
		// there. Deletes through this handle overwrite the entry
		// (markDeleted/compaction), so the negative cache never masks
		// them.
		t.mu.Lock()
		t.deletes[seg] = nil
		t.mu.Unlock()
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b bitset.Bitset
	if err := b.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("lsm: corrupt delete bitmap of %s: %w", seg, err)
	}
	t.mu.Lock()
	t.deletes[seg] = &b
	t.mu.Unlock()
	return &b, nil
}

// Reader opens a column reader for a live segment.
func (t *Table) Reader(seg string) (*storage.SegmentReader, error) {
	t.mu.RLock()
	m, ok := t.segments[seg]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lsm: segment %q not live", seg)
	}
	return &storage.SegmentReader{Store: t.store, Meta: m, Schema: t.opts.Schema}, nil
}

// OpenIndex loads the per-segment vector index from the store,
// bypassing any cache (workers wrap this with the hierarchical
// cache; tests and single-node paths call it directly).
func (t *Table) OpenIndex(seg string) (index.Index, error) {
	return t.OpenIndexCtx(nil, seg)
}

// OpenIndexCtx is OpenIndex bounded by a context: a fired deadline or
// cancel aborts the index blob read.
func (t *Table) OpenIndexCtx(ctx context.Context, seg string) (index.Index, error) {
	t.mu.RLock()
	m, ok := t.segments[seg]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lsm: segment %q not live", seg)
	}
	return t.loadIndexForMetaCtx(ctx, m)
}

// IndexKeyOf returns the blob key of a segment's ANN index.
func (t *Table) IndexKeyOf(seg string) string {
	return storage.IndexKey(t.opts.Name, seg, t.opts.IndexColumn)
}

// IndexLoaderFor returns a deserializer closure for the segment's
// index blob — this is what workers hand to the hierarchical cache.
func (t *Table) IndexLoaderFor(meta *storage.SegmentMeta) func(blob []byte) (any, int64, error) {
	return func(blob []byte) (any, int64, error) {
		ix, err := t.newIndexFor(meta)
		if err != nil {
			return nil, 0, err
		}
		if err := ix.Load(bytesReader(blob)); err != nil {
			return nil, 0, err
		}
		t.wireRefine(ix, meta)
		return ix, ix.MemoryBytes(), nil
	}
}

// rawRefiner is implemented by quantized indexes that support an
// exact-distance refine stage (IVFPQ/IVFPQFS).
type rawRefiner interface {
	SetRawProvider(fn func(id int64, out []float32) bool)
}

// wireRefine gives quantized indexes a provider that reads exact
// vectors from the segment's vector column — the paper's "RFlat"
// re-rank. The column is fetched lazily once per loaded index and held
// for the index's cache lifetime.
func (t *Table) wireRefine(ix index.Index, meta *storage.SegmentMeta) {
	rr, ok := ix.(rawRefiner)
	if !ok {
		return
	}
	var (
		once sync.Once
		col  *storage.ColumnData
	)
	rd := &storage.SegmentReader{Store: t.store, Meta: meta, Schema: t.opts.Schema}
	vcol := t.opts.IndexColumn
	rr.SetRawProvider(func(id int64, out []float32) bool {
		once.Do(func() {
			c, err := rd.ReadColumn(vcol)
			if err == nil {
				col = c
			}
		})
		if col == nil || id < 0 || id >= int64(col.Len()) {
			return false
		}
		copy(out, col.Vector(int(id)))
		return true
	})
}

func (t *Table) loadIndexForMeta(m *storage.SegmentMeta) (index.Index, error) {
	return t.loadIndexForMetaCtx(nil, m)
}

func (t *Table) loadIndexForMetaCtx(ctx context.Context, m *storage.SegmentMeta) (index.Index, error) {
	blob, err := storage.GetCtx(ctx, t.store, storage.IndexKey(t.opts.Name, m.Name, t.opts.IndexColumn))
	if err != nil {
		return nil, err
	}
	ix, err := t.newIndexFor(m)
	if err != nil {
		return nil, err
	}
	if err := ix.Load(bytesReader(blob)); err != nil {
		return nil, fmt.Errorf("lsm: loading index of %s: %w", m.Name, err)
	}
	t.wireRefine(ix, m)
	return ix, nil
}

// newIndexFor constructs an empty index with the same parameters used
// at build time for the segment (auto-index parameters are recomputed
// from the segment's row count, which is stable).
func (t *Table) newIndexFor(m *storage.SegmentMeta) (index.Index, error) {
	p := t.buildParamsFor(m.Rows)
	return index.New(t.opts.IndexType, p)
}
