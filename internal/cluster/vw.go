package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blendhouse/internal/bitset"
	"blendhouse/internal/cache"
	"blendhouse/internal/hashring"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
	"blendhouse/internal/vec"
)

// VWConfig configures a virtual warehouse.
type VWConfig struct {
	Name string
	// Cache sizes each worker's hierarchical cache.
	Cache cache.Config
	// Serving enables the vector-search-serving RPC: a worker that
	// lacks a segment's index proxies the scan to the segment's
	// previous owner instead of brute-forcing (paper §II-D).
	Serving bool
	// Replicas is the number of candidate workers per segment used
	// for fault-tolerant retry (>=1).
	Replicas int
	// WorkerSlots caps concurrent segment scans per worker — each
	// worker models a node with fixed compute capacity, which is what
	// makes VW scaling raise aggregate throughput (default 2).
	WorkerSlots int
	// SimulatedScanCost, when positive, charges each ANN scan a fixed
	// service time while it holds a slot on the worker whose index
	// cache executes it. On a single-core host the real CPU is shared
	// by all "workers", so aggregate throughput cannot scale with
	// worker count; this knob gives each worker its own (virtual)
	// capacity for the elasticity experiments. Zero (the default)
	// disables it — every other experiment measures real work.
	SimulatedScanCost time.Duration
	// SimulatedPostCost charges the per-segment post-processing work
	// (column fetch, filtering, partial merge) on the *assigned*
	// worker. The paper's serving argument rests on this split: "ANN
	// scan is a lightweight operator compared with the end-to-end
	// query running cost", so a cold worker that proxies only its ANN
	// scans still contributes most of its capacity. Zero disables.
	SimulatedPostCost time.Duration
}

func (c VWConfig) withDefaults() VWConfig {
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = 2
	}
	return c
}

// VW is a virtual warehouse: an elastic group of stateless workers
// sharing one remote store. Search scheduling, pruning, serving and
// retry all live here.
type VW struct {
	cfg    VWConfig
	remote storage.BlobStore

	mu            sync.RWMutex
	workers       map[string]*Worker
	ring          *hashring.Ring
	prevAssign    map[string]string // segment key -> owner before the last topology change
	knownSegments map[string]bool   // every segment key ever scheduled
	serving       ServingConfig
	endpoints     map[string]*rpcEndpoint
	tables        map[string]*lsm.Table
}

// NewVW creates an empty virtual warehouse over the shared store.
func NewVW(cfg VWConfig, remote storage.BlobStore) *VW {
	return &VW{
		cfg:           cfg.withDefaults(),
		remote:        remote,
		workers:       map[string]*Worker{},
		ring:          hashring.New(0),
		prevAssign:    map[string]string{},
		knownSegments: map[string]bool{},
	}
}

// Name returns the VW name.
func (vw *VW) Name() string { return vw.cfg.Name }

// Workers returns the live worker IDs, sorted.
func (vw *VW) Workers() []string {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	out := make([]string, 0, len(vw.workers))
	for id := range vw.workers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Worker returns a worker by ID (nil if absent).
func (vw *VW) Worker(id string) *Worker {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	return vw.workers[id]
}

// AddWorker scales the VW up. Before changing the ring it snapshots
// the current assignment of every known segment so the serving path
// can find each segment's previous owner.
func (vw *VW) AddWorker(id string) (*Worker, error) {
	vw.mu.Lock()
	defer vw.mu.Unlock()
	if _, dup := vw.workers[id]; dup {
		return nil, fmt.Errorf("cluster: worker %q already in VW %s", id, vw.cfg.Name)
	}
	vw.snapshotAssignLocked()
	w := newWorker(id, vw, vw.cfg.Cache, vw.cfg.WorkerSlots)
	vw.workers[id] = w
	vw.ring.Add(id)
	return w, nil
}

// RemoveWorker scales the VW down.
func (vw *VW) RemoveWorker(id string) error {
	vw.mu.Lock()
	defer vw.mu.Unlock()
	if _, ok := vw.workers[id]; !ok {
		return fmt.Errorf("cluster: worker %q not in VW %s", id, vw.cfg.Name)
	}
	vw.snapshotAssignLocked()
	delete(vw.workers, id)
	vw.ring.Remove(id)
	return nil
}

// snapshotAssignLocked records the pre-change owner of every segment
// key currently resident in any worker's memory. It deliberately
// over-records (all keys ever assigned): stale entries are validated
// against actual cache residency at serving time.
func (vw *VW) snapshotAssignLocked() {
	if vw.ring.Len() == 0 {
		return
	}
	for key := range vw.knownSegments {
		vw.prevAssign[key] = vw.ring.Get(key)
	}
}

// rememberSegmentLocked records a segment key for future pre-scale
// snapshots. Caller holds mu.
func (vw *VW) rememberSegmentLocked(key string) {
	vw.knownSegments[key] = true
}

// ScheduleSegments maps segments to live workers via the ring.
// Segments owned by dead workers fall over to the next replica.
func (vw *VW) ScheduleSegments(table *lsm.Table, metas []*storage.SegmentMeta) map[string][]*storage.SegmentMeta {
	vw.mu.Lock()
	for _, m := range metas {
		vw.rememberSegmentLocked(segKey(table, m.Name))
	}
	vw.mu.Unlock()

	out := map[string][]*storage.SegmentMeta{}
	for _, m := range metas {
		id := vw.ownerOf(table, m.Name)
		if id == "" {
			continue
		}
		out[id] = append(out[id], m)
	}
	return out
}

// ownerOf returns the live worker responsible for a segment,
// consulting replicas when the primary is down.
func (vw *VW) ownerOf(table *lsm.Table, seg string) string {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	for _, id := range vw.ring.GetN(segKey(table, seg), vw.cfg.Replicas) {
		if w := vw.workers[id]; w != nil && w.Alive() {
			return id
		}
	}
	// All replicas down: any live worker (stateless, so correct,
	// just cold).
	for id, w := range vw.workers {
		if w.Alive() {
			return id
		}
	}
	return ""
}

func segKey(table *lsm.Table, seg string) string {
	return table.Name() + "/" + seg
}

// PreviousOwner returns the worker that owned the segment before the
// last topology change ("" when unknown or unchanged).
func (vw *VW) PreviousOwner(table *lsm.Table, seg string) string {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	return vw.prevAssign[segKey(table, seg)]
}

// SearchOptions tunes a distributed search.
type SearchOptions struct {
	Params index.SearchParams
	// Filters maps segment name to the offset bitset of rows passing
	// scalar predicates (nil entry or missing key = unfiltered).
	Filters map[string]*bitset.Bitset
	// DisableServing forces local execution even on cache miss
	// (ablation knob for the Fig 11/18 experiments).
	DisableServing bool
	// ForceBruteForce skips the index entirely (Fig 11's worst case).
	ForceBruteForce bool
	// Span, when non-nil, is the parent for per-segment scan spans
	// (EXPLAIN ANALYZE); IdxTally accumulates index-cache hit/miss per
	// load. Both are nil-safe no-ops when unset.
	Span     *obs.Span
	IdxTally *obs.CacheTally
}

// Search runs a distributed top-k over the given segments: schedule,
// per-segment ANN scan (local, served, or brute-force), global merge.
// Failed workers are retried on replicas (query-level retry, §II-E).
// ctx bounds every leg of the fan-out — slot waits, simulated service
// times, index loads and serving RPC waits; cancelling it stops
// pending per-segment scans before they start.
func (vw *VW) Search(ctx context.Context, table *lsm.Table, metas []*storage.SegmentMeta, q []float32, k int, opts SearchOptions) ([]SegmentCandidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	assign := vw.ScheduleSegments(table, metas)
	assigned := 0
	for _, segs := range assign {
		assigned += len(segs)
	}
	if assigned < len(metas) {
		return nil, fmt.Errorf("cluster: %d of %d segments unassignable (no live workers in VW %s)",
			len(metas)-assigned, len(metas), vw.cfg.Name)
	}
	// Per-query cancel: the first failing worker goroutine stops the
	// rest of the fan-out instead of letting it run to completion.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		cands []SegmentCandidate
		err   error
	}
	ch := make(chan result, len(assign))
	jobs := 0
	for workerID, segs := range assign {
		workerID, segs := workerID, segs
		jobs++
		go func() {
			var all []SegmentCandidate
			for _, m := range segs {
				if err := gctx.Err(); err != nil {
					ch <- result{nil, err}
					return
				}
				cands, err := vw.searchOneWithRetry(gctx, table, m, workerID, q, k, opts)
				if err != nil {
					ch <- result{nil, err}
					return
				}
				for _, c := range cands {
					all = append(all, SegmentCandidate{Segment: m.Name, Offset: c.ID, Dist: c.Dist})
				}
			}
			ch <- result{all, nil}
		}()
	}
	var merged []SegmentCandidate
	var firstErr error
	for i := 0; i < jobs; i++ {
		r := <-ch
		if r.err != nil {
			// Prefer a root-cause error over cancellations induced by
			// our own cancel() below.
			if firstErr == nil || (isCtxErr(firstErr) && ctx.Err() == nil && !isCtxErr(r.err)) {
				firstErr = r.err
			}
			cancel()
		}
		merged = append(merged, r.cands...)
	}
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	sortSegmentCandidates(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}

// SegmentCandidate is a search hit qualified by its segment.
type SegmentCandidate struct {
	Segment string
	Offset  int64
	Dist    float32
}

// isCtxErr reports whether err is a context cancellation/deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func sortSegmentCandidates(cs []SegmentCandidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Dist != cs[j].Dist {
			return cs[i].Dist < cs[j].Dist
		}
		if cs[i].Segment != cs[j].Segment {
			return cs[i].Segment < cs[j].Segment
		}
		return cs[i].Offset < cs[j].Offset
	})
}

// searchOneWithRetry searches one segment on the designated worker,
// applying the serving path on cache miss and retrying on a replica
// if the worker dies mid-query.
func (vw *VW) searchOneWithRetry(ctx context.Context, table *lsm.Table, m *storage.SegmentMeta, workerID string, q []float32, k int, opts SearchOptions) ([]index.Candidate, error) {
	filter := opts.Filters[m.Name]
	sp := opts.Span.Child("segment " + m.Name)
	defer sp.End()
	sp.Set("worker", workerID)
	// Per-segment storage-retry delta: the ctx tally is query-global,
	// so the difference across this segment's scan is what this
	// segment's reads cost in retries.
	if tally := storage.TallyFrom(ctx); tally != nil {
		start := tally.Retries()
		defer func() {
			if d := tally.Retries() - start; d > 0 {
				sp.SetInt("store_retries", d)
			}
		}()
	}
	tryWorker := func(id string) ([]index.Candidate, error) {
		w := vw.Worker(id)
		if w == nil || !w.Alive() {
			return nil, fmt.Errorf("cluster: worker %s unavailable", id)
		}
		if opts.ForceBruteForce {
			sp.Set("scan", "brute-force")
			return w.BruteForceSearch(ctx, table, m, q, k, filter)
		}
		// Vector search serving: if this worker lacks the index in
		// memory, proxy to the previous owner that still has it warm.
		if vw.cfg.Serving && !opts.DisableServing && !w.HasIndexInMem(table, m.Name) {
			if prev := vw.PreviousOwner(table, m.Name); prev != "" && prev != id {
				if pw := vw.Worker(prev); pw != nil && pw.Alive() && pw.HasIndexInMem(table, m.Name) {
					// The serving hop is a cache miss papered over by
					// the previous owner's warm index.
					opts.IdxTally.Miss()
					sp.Set("served_by", prev)
					rpcStart := obs.Now()
					res, err := vw.serve(ctx, pw, table, m, q, k, opts.Params, filter)
					rtt := time.Since(rpcStart)
					mServingRTT.Observe(rtt)
					sp.SetDur("rpc_rtt", rtt)
					return res, err
				}
			}
		}
		return w.searchSegment(ctx, table, m, q, k, opts.Params, filter, opts.IdxTally)
	}
	res, err := tryWorker(workerID)
	if err == nil {
		// Post-processing (fetch/filter/merge) runs on the assigned
		// worker regardless of where the ANN scan executed.
		if w := vw.Worker(workerID); w != nil {
			if perr := w.chargePost(ctx); perr != nil {
				return nil, perr
			}
		}
		sp.SetInt("candidates", int64(len(res)))
		return res, nil
	}
	// A cancelled/timed-out query must not fail over: the replicas
	// would just re-observe the same dead context.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	// Query-level retry on replicas (paper §II-E).
	for _, id := range vw.replicasFor(table, m.Name) {
		if id == workerID {
			continue
		}
		if res, rerr := tryWorker(id); rerr == nil {
			sp.Set("retried_on", id)
			sp.SetInt("candidates", int64(len(res)))
			return res, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return nil, err
}

func (vw *VW) replicasFor(table *lsm.Table, seg string) []string {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	return vw.ring.GetN(segKey(table, seg), vw.cfg.Replicas)
}

// Preload warms every worker's cache with the indexes of the segments
// the ring assigns to it — the same consistent hashing the query
// scheduler uses, so preload and scheduling agree (paper §II-D).
func (vw *VW) Preload(table *lsm.Table) []error {
	assign := vw.ScheduleSegments(table, table.Segments())
	var errs []error
	for workerID, segs := range assign {
		if w := vw.Worker(workerID); w != nil {
			errs = append(errs, w.Preload(table, segs)...)
		}
	}
	return errs
}

// PruneOptions controls scheduler-side segment pruning (paper §II-C,
// §IV-B).
type PruneOptions struct {
	// Partition restricts to segments whose partition value is in the
	// set (nil = no partition pruning).
	Partitions map[string]bool
	// IntRanges / FloatRanges prune on column min/max statistics.
	IntRanges   map[string][2]int64
	FloatRanges map[string][2]float64
	// QueryVector enables semantic pruning: segments are ranked by
	// centroid distance and only the closest SemanticFraction kept.
	QueryVector      []float32
	SemanticFraction float64 // (0,1]; 0 disables semantic pruning
	// MinSegments floors the semantic cut so adaptive retry has room.
	MinSegments int
}

// PruneSegments applies scalar and semantic pruning to the table's
// live segments and returns the survivors, semantically closest
// first when a query vector is given.
func PruneSegments(table *lsm.Table, metas []*storage.SegmentMeta, opts PruneOptions) []*storage.SegmentMeta {
	var out []*storage.SegmentMeta
	for _, m := range metas {
		if opts.Partitions != nil && !opts.Partitions[m.Partition] {
			continue
		}
		skip := false
		for col, r := range opts.IntRanges {
			if m.PruneByInt(col, r[0], r[1]) {
				skip = true
				break
			}
		}
		if !skip {
			for col, r := range opts.FloatRanges {
				if m.PruneByFloat(col, r[0], r[1]) {
					skip = true
					break
				}
			}
		}
		if skip {
			continue
		}
		out = append(out, m)
	}
	if opts.QueryVector != nil && opts.SemanticFraction > 0 && opts.SemanticFraction < 1 && len(out) > 1 {
		out = semanticCut(out, opts.QueryVector, opts.SemanticFraction, opts.MinSegments)
	}
	return out
}

// semanticCut keeps the fraction of segments whose centroids are
// nearest the query vector.
func semanticCut(metas []*storage.SegmentMeta, q []float32, frac float64, minSegs int) []*storage.SegmentMeta {
	type scored struct {
		m *storage.SegmentMeta
		d float32
	}
	scoredList := make([]scored, 0, len(metas))
	var noCentroid []*storage.SegmentMeta
	for _, m := range metas {
		if len(m.Centroid) != len(q) {
			noCentroid = append(noCentroid, m) // can't rank: always keep
			continue
		}
		scoredList = append(scoredList, scored{m, vec.L2Squared(q, m.Centroid)})
	}
	sort.Slice(scoredList, func(i, j int) bool {
		if scoredList[i].d != scoredList[j].d {
			return scoredList[i].d < scoredList[j].d
		}
		return scoredList[i].m.Name < scoredList[j].m.Name
	})
	keep := int(float64(len(scoredList))*frac + 0.5)
	if keep < minSegs {
		keep = minSegs
	}
	if keep < 1 {
		keep = 1
	}
	if keep > len(scoredList) {
		keep = len(scoredList)
	}
	out := make([]*storage.SegmentMeta, 0, keep+len(noCentroid))
	for i := 0; i < keep; i++ {
		out = append(out, scoredList[i].m)
	}
	return append(out, noCentroid...)
}

// RankBuckets orders a table's semantic buckets by centroid distance
// to the query — used by the executor to widen the semantic cut
// adaptively when a pruned search comes back short.
func RankBuckets(table *lsm.Table, q []float32) []int {
	cents := table.Centroids()
	if cents == nil {
		return nil
	}
	n := cents.Rows()
	order := make([]int, n)
	dists := make([]float32, n)
	for i := 0; i < n; i++ {
		order[i] = i
		dists[i] = vec.L2Squared(q, cents.Row(i))
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	return order
}
