// Package diskann implements a DiskANN-style index: a Vamana graph
// (Subramanya et al., NeurIPS'19) built with α-pruned greedy search,
// searched with a bounded beam. The graph and vectors serialize to a
// single flat file of fixed-size node records so that a file-backed
// searcher (see disk.go) can beam-search straight off storage with a
// small in-memory cache — the paper's DISKANN index type and its
// future-work direction (1), "exploring the on-disk vector index for
// better cold read performance".
package diskann

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"

	"blendhouse/internal/index"
	"blendhouse/internal/vec"
)

func init() {
	index.Register(index.DiskANN, func(p index.BuildParams) (index.Index, error) {
		return New(p)
	})
}

// Index is an in-memory Vamana graph. AddWithIDs accumulates vectors;
// the graph is built lazily on the first search (or explicitly via
// Build), because Vamana is a batch construction.
type Index struct {
	params index.BuildParams

	mu    sync.RWMutex
	data  []float32
	ids   []int64
	adj   [][]uint32 // fixed bound DegreeBound after build
	entry int
	built bool
}

// New returns an empty DiskANN index.
func New(p index.BuildParams) (*Index, error) {
	if p.Dim <= 0 {
		return nil, fmt.Errorf("diskann: dimension must be positive, got %d", p.Dim)
	}
	return &Index{params: p, entry: -1}, nil
}

// Type returns index.DiskANN.
func (ix *Index) Type() index.Type { return index.DiskANN }

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.params.Dim }

// Count returns the number of vectors.
func (ix *Index) Count() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ids)
}

// NeedsTrain reports false (Vamana has no trained state besides the
// graph itself).
func (ix *Index) NeedsTrain() bool { return false }

// Train is a no-op.
func (ix *Index) Train([]float32) error { return nil }

// MemoryBytes counts vectors, ids and adjacency.
func (ix *Index) MemoryBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := int64(4*len(ix.data) + 8*len(ix.ids))
	for _, a := range ix.adj {
		n += int64(4 * cap(a))
	}
	return n
}

// AddWithIDs buffers vectors; the graph is (re)built on demand.
func (ix *Index) AddWithIDs(vecs []float32, ids []int64) error {
	if err := index.ValidateAdd(ix.params.Dim, vecs, ids); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.data = append(ix.data, vecs...)
	ix.ids = append(ix.ids, ids...)
	ix.built = false
	return nil
}

func (ix *Index) row(i int) []float32 {
	d := ix.params.Dim
	return ix.data[i*d : i*d+d]
}

func (ix *Index) dist(i int, q []float32) float32 {
	return vec.Distance(ix.params.Metric, q, ix.row(i))
}

// Build constructs the Vamana graph: start from a random regular
// graph, then for each point run greedy search from the medoid and
// α-prune the union of the search's visited set with current
// neighbors; add reverse edges with the same pruning.
func (ix *Index) Build() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.buildLocked()
}

func (ix *Index) buildLocked() error {
	if ix.built {
		return nil
	}
	n := len(ix.ids)
	if n == 0 {
		ix.built = true
		ix.entry = -1
		return nil
	}
	r := ix.params.DegreeBound
	rng := rand.New(rand.NewSource(ix.params.Seed + 11))
	ix.adj = make([][]uint32, n)
	for i := range ix.adj {
		deg := r
		if deg > n-1 {
			deg = n - 1
		}
		ix.adj[i] = make([]uint32, 0, r)
		for len(ix.adj[i]) < deg {
			cand := uint32(rng.Intn(n))
			if int(cand) == i || contains(ix.adj[i], cand) {
				continue
			}
			ix.adj[i] = append(ix.adj[i], cand)
		}
	}
	ix.entry = ix.medoid()
	// Two passes over all points in random order, as in the paper.
	order := rng.Perm(n)
	for pass := 0; pass < 2; pass++ {
		alpha := 1.0
		if pass == 1 {
			alpha = ix.params.Alpha
		}
		for _, p := range order {
			visited := ix.greedyVisit(ix.row(p), ix.params.BuildList)
			ix.robustPrune(p, visited, alpha)
			for _, nb := range ix.adj[p] {
				ix.addEdge(int(nb), p, alpha)
			}
		}
	}
	ix.built = true
	return nil
}

func contains(s []uint32, x uint32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// medoid returns the point closest to the dataset centroid.
func (ix *Index) medoid() int {
	d := ix.params.Dim
	n := len(ix.ids)
	cent := make([]float32, d)
	for i := 0; i < n; i++ {
		vec.Add(cent, ix.row(i))
	}
	vec.Scale(cent, 1/float32(n))
	best, bestD := 0, float32(0)
	for i := 0; i < n; i++ {
		dd := vec.L2Squared(cent, ix.row(i))
		if i == 0 || dd < bestD {
			best, bestD = i, dd
		}
	}
	return best
}

// greedyVisit runs beam search from the entry point and returns the
// visited set as scored nodes (ascending by distance).
func (ix *Index) greedyVisit(q []float32, l int) []scored {
	beam := newBeam(l)
	seen := map[int]bool{ix.entry: true}
	beam.offer(scored{ix.entry, ix.dist(ix.entry, q)})
	visited := []scored{}
	for {
		c, ok := beam.nextUnexpanded()
		if !ok {
			break
		}
		visited = append(visited, c)
		for _, nb := range ix.adj[c.node] {
			ni := int(nb)
			if seen[ni] {
				continue
			}
			seen[ni] = true
			beam.offer(scored{ni, ix.dist(ni, q)})
		}
	}
	sortScored(visited)
	return visited
}

// robustPrune sets p's adjacency from candidate set cands using the
// α-pruning rule: drop a candidate if an already-kept neighbor is
// α-times closer to it than p is.
func (ix *Index) robustPrune(p int, cands []scored, alpha float64) {
	// Merge current neighbors into the pool.
	pool := append([]scored{}, cands...)
	for _, nb := range ix.adj[p] {
		pool = append(pool, scored{int(nb), ix.dist(int(nb), ix.row(p))})
	}
	sortScored(pool)
	kept := make([]uint32, 0, ix.params.DegreeBound)
	seen := map[int]bool{p: true}
	for _, c := range pool {
		if seen[c.node] {
			continue
		}
		seen[c.node] = true
		ok := true
		for _, kv := range kept {
			dk := vec.Distance(ix.params.Metric, ix.row(int(kv)), ix.row(c.node))
			if float64(dk)*alpha < float64(c.dist) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, uint32(c.node))
			if len(kept) == ix.params.DegreeBound {
				break
			}
		}
	}
	ix.adj[p] = kept
}

// addEdge inserts edge from→to, re-pruning if the degree cap is hit.
func (ix *Index) addEdge(from, to int, alpha float64) {
	if contains(ix.adj[from], uint32(to)) {
		return
	}
	if len(ix.adj[from]) < ix.params.DegreeBound {
		ix.adj[from] = append(ix.adj[from], uint32(to))
		return
	}
	pool := make([]scored, 0, len(ix.adj[from])+1)
	base := ix.row(from)
	for _, nb := range ix.adj[from] {
		pool = append(pool, scored{int(nb), vec.Distance(ix.params.Metric, base, ix.row(int(nb)))})
	}
	pool = append(pool, scored{to, vec.Distance(ix.params.Metric, base, ix.row(to))})
	sortScored(pool)
	ix.adj[from] = ix.adj[from][:0]
	ix.robustPruneInto(from, pool, alpha)
}

func (ix *Index) robustPruneInto(p int, pool []scored, alpha float64) {
	kept := ix.adj[p][:0]
	seen := map[int]bool{p: true}
	for _, c := range pool {
		if seen[c.node] {
			continue
		}
		seen[c.node] = true
		ok := true
		for _, kv := range kept {
			dk := vec.Distance(ix.params.Metric, ix.row(int(kv)), ix.row(c.node))
			if float64(dk)*alpha < float64(c.dist) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, uint32(c.node))
			if len(kept) == ix.params.DegreeBound {
				break
			}
		}
	}
	ix.adj[p] = kept
}

// SearchWithFilter beam-searches the graph. Filtered-out nodes are
// traversed but not returned (FilteredDiskANN-style routing through
// blocked nodes).
func (ix *Index) SearchWithFilter(q []float32, k int, filter index.Filter, p index.SearchParams) ([]index.Candidate, error) {
	if len(q) != ix.params.Dim {
		return nil, fmt.Errorf("diskann: query dim %d != index dim %d", len(q), ix.params.Dim)
	}
	p = p.WithDefaults(k)
	ix.mu.RLock()
	if !ix.built {
		ix.mu.RUnlock()
		if err := ix.Build(); err != nil {
			return nil, err
		}
		ix.mu.RLock()
	}
	defer ix.mu.RUnlock()
	if ix.entry < 0 {
		return nil, nil
	}
	l := p.Ef
	if l < k {
		l = k
	}
	visited := ix.greedyVisit(q, l)
	t := index.NewTopK(k)
	for _, s := range visited {
		id := ix.ids[s.node]
		if filter != nil && (id >= int64(filter.Len()) || id < 0 || !filter.Test(int(id))) {
			continue
		}
		t.Push(index.Candidate{ID: id, Dist: s.dist})
	}
	return t.Results(), nil
}

// SearchWithRange widens the beam until the farthest visited node
// exceeds the radius.
func (ix *Index) SearchWithRange(q []float32, radius float32, filter index.Filter, p index.SearchParams) ([]index.Candidate, error) {
	if len(q) != ix.params.Dim {
		return nil, fmt.Errorf("diskann: query dim %d != index dim %d", len(q), ix.params.Dim)
	}
	p = p.WithDefaults(16)
	ix.mu.RLock()
	built, n := ix.built, len(ix.ids)
	ix.mu.RUnlock()
	if !built {
		if err := ix.Build(); err != nil {
			return nil, err
		}
	}
	l := p.Ef
	for {
		ix.mu.RLock()
		if ix.entry < 0 {
			ix.mu.RUnlock()
			return nil, nil
		}
		visited := ix.greedyVisit(q, l)
		ix.mu.RUnlock()
		complete := len(visited) >= n || (len(visited) > 0 && visited[len(visited)-1].dist > radius)
		if complete || l >= n {
			var out []index.Candidate
			for _, s := range visited {
				if s.dist > radius {
					break
				}
				id := ix.ids[s.node]
				if filter != nil && (id >= int64(filter.Len()) || id < 0 || !filter.Test(int(id))) {
					continue
				}
				out = append(out, index.Candidate{ID: id, Dist: s.dist})
			}
			return out, nil
		}
		l *= 2
	}
}

// SearchIterator reports no native support (DiskANN's beam search has
// no cheap resumable form); the generic restart iterator is used.
func (ix *Index) SearchIterator([]float32, index.SearchParams) (index.Iterator, error) {
	return nil, index.ErrNoNativeIterator
}

// scored / beam helpers -------------------------------------------------

type scored struct {
	node int
	dist float32
}

func sortScored(s []scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].dist < s[j-1].dist || (s[j].dist == s[j-1].dist && s[j].node < s[j-1].node)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// beam is the bounded candidate list of Vamana's greedy search: a
// min-heap of unexpanded nodes plus the L best seen overall.
type beam struct {
	l        int
	frontier minHeap
	bestDist []float32 // sorted ascending, at most l entries
}

func newBeam(l int) *beam { return &beam{l: l} }

func (b *beam) offer(s scored) {
	if len(b.bestDist) == b.l && s.dist >= b.bestDist[b.l-1] {
		return
	}
	heap.Push(&b.frontier, s)
	// insert into bestDist
	pos := len(b.bestDist)
	for pos > 0 && b.bestDist[pos-1] > s.dist {
		pos--
	}
	b.bestDist = append(b.bestDist, 0)
	copy(b.bestDist[pos+1:], b.bestDist[pos:])
	b.bestDist[pos] = s.dist
	if len(b.bestDist) > b.l {
		b.bestDist = b.bestDist[:b.l]
	}
}

func (b *beam) nextUnexpanded() (scored, bool) {
	for b.frontier.Len() > 0 {
		s := heap.Pop(&b.frontier).(scored)
		if len(b.bestDist) == b.l && s.dist > b.bestDist[b.l-1] {
			continue // fell out of the beam
		}
		return s, true
	}
	return scored{}, false
}

type minHeap []scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
