// Package wal is BlendHouse's durable real-time write path: a
// per-table write-ahead log of INSERT/DELETE statements stored as
// immutable blobs on the shared store, group-committed so concurrent
// writers coalesce into one fsynced append, plus the searchable
// in-memory memtable that makes acknowledged-but-unflushed rows
// visible to queries immediately (paper §III-B realtime updates,
// extended below segment granularity).
//
// The package knows nothing about the LSM engine: it operates on
// storage.BlobStore and storage.RowBatch only. The table-level
// integration (flush into L0 segments, crash recovery in lsm.Open,
// flushed-LSN bookkeeping) lives in internal/lsm.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"blendhouse/internal/storage"
)

// RecordType discriminates WAL records.
type RecordType uint8

// Record types. Values are part of the on-disk format.
const (
	// RecInsert carries a columnar row batch.
	RecInsert RecordType = 1
	// RecDelete carries a key column name and the keys to delete.
	RecDelete RecordType = 2
)

// Record is one logged DML statement. LSNs are assigned by the log at
// commit time, start at 1, and increase by one per record.
type Record struct {
	LSN  int64
	Type RecordType

	// Batch holds the inserted rows (RecInsert).
	Batch *storage.RowBatch

	// DeleteCol / DeleteKeys describe a key delete (RecDelete).
	DeleteCol  string
	DeleteKeys []int64
}

// Blob format:
//
//	magic   u32  = walMagic
//	version u8   = walVersion
//	records:
//	  lsn   u64
//	  type  u8
//	  plen  u32
//	  crc   u32   (IEEE CRC-32 of the payload bytes)
//	  payload [plen]byte
//
// Insert payload: u32 row count, then each schema column in order
// (ints/floats little-endian, strings length-prefixed, vectors as
// dim×rows float32s). Delete payload: u16 column-name length + name,
// u32 key count, keys. Blobs are written atomically (one Put per
// group commit), so a torn record is corruption, not a crash artifact
// — decoding fails loudly instead of silently truncating.
const (
	walMagic   uint32 = 0x42485741 // "BHWA"
	walVersion byte   = 1
)

type walBuf struct{ b []byte }

func (w *walBuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *walBuf) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *walBuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *walBuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *walBuf) raw(p []byte) { w.b = append(w.b, p...) }
func (w *walBuf) str(s string) { w.b = append(w.b, s...) }

type walReader struct {
	b   []byte
	off int
}

func (r *walReader) remain() int { return len(r.b) - r.off }

func (r *walReader) take(n int) ([]byte, error) {
	if r.remain() < n {
		return nil, fmt.Errorf("wal: truncated record (need %d bytes, have %d)", n, r.remain())
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *walReader) u8() (byte, error) {
	p, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return p[0], nil
}

func (r *walReader) u16() (uint16, error) {
	p, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(p), nil
}

func (r *walReader) u32() (uint32, error) {
	p, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func (r *walReader) u64() (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

// encodePayload serializes a record's body (everything after the
// per-record header).
func encodePayload(rec *Record) ([]byte, error) {
	var w walBuf
	switch rec.Type {
	case RecInsert:
		if err := rec.Batch.Validate(); err != nil {
			return nil, err
		}
		n := rec.Batch.Len()
		w.u32(uint32(n))
		for _, col := range rec.Batch.Cols {
			switch col.Def.Type {
			case storage.Int64Type, storage.DateTimeType:
				for _, v := range col.Ints {
					w.u64(uint64(v))
				}
			case storage.Float64Type:
				for _, v := range col.Floats {
					w.u64(math.Float64bits(v))
				}
			case storage.StringType:
				for _, s := range col.Strs {
					w.u32(uint32(len(s)))
					w.str(s)
				}
			case storage.VectorType:
				for _, v := range col.Vecs {
					w.u32(math.Float32bits(v))
				}
			default:
				return nil, fmt.Errorf("wal: unknown column type %d", col.Def.Type)
			}
		}
	case RecDelete:
		if len(rec.DeleteCol) > 0xFFFF {
			return nil, fmt.Errorf("wal: delete column name too long")
		}
		w.u16(uint16(len(rec.DeleteCol)))
		w.str(rec.DeleteCol)
		w.u32(uint32(len(rec.DeleteKeys)))
		for _, k := range rec.DeleteKeys {
			w.u64(uint64(k))
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	return w.b, nil
}

// decodePayload parses a record body against the table schema.
func decodePayload(schema *storage.Schema, typ RecordType, payload []byte) (*Record, error) {
	r := &walReader{b: payload}
	rec := &Record{Type: typ}
	switch typ {
	case RecInsert:
		nu, err := r.u32()
		if err != nil {
			return nil, err
		}
		n := int(nu)
		batch := storage.NewRowBatch(schema)
		for _, col := range batch.Cols {
			switch col.Def.Type {
			case storage.Int64Type, storage.DateTimeType:
				col.Ints = make([]int64, n)
				for i := 0; i < n; i++ {
					v, err := r.u64()
					if err != nil {
						return nil, err
					}
					col.Ints[i] = int64(v)
				}
			case storage.Float64Type:
				col.Floats = make([]float64, n)
				for i := 0; i < n; i++ {
					v, err := r.u64()
					if err != nil {
						return nil, err
					}
					col.Floats[i] = math.Float64frombits(v)
				}
			case storage.StringType:
				col.Strs = make([]string, n)
				for i := 0; i < n; i++ {
					l, err := r.u32()
					if err != nil {
						return nil, err
					}
					p, err := r.take(int(l))
					if err != nil {
						return nil, err
					}
					col.Strs[i] = string(p)
				}
			case storage.VectorType:
				col.Vecs = make([]float32, n*col.Def.Dim)
				for i := range col.Vecs {
					v, err := r.u32()
					if err != nil {
						return nil, err
					}
					col.Vecs[i] = math.Float32frombits(v)
				}
			default:
				return nil, fmt.Errorf("wal: unknown column type %d", col.Def.Type)
			}
		}
		rec.Batch = batch
	case RecDelete:
		nl, err := r.u16()
		if err != nil {
			return nil, err
		}
		name, err := r.take(int(nl))
		if err != nil {
			return nil, err
		}
		rec.DeleteCol = string(name)
		nk, err := r.u32()
		if err != nil {
			return nil, err
		}
		rec.DeleteKeys = make([]int64, nk)
		for i := range rec.DeleteKeys {
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			rec.DeleteKeys[i] = int64(v)
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", typ)
	}
	if r.remain() != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after record payload", r.remain())
	}
	return rec, nil
}

// EncodeBlob serializes one group commit's records into a WAL blob.
func EncodeBlob(recs []*Record) ([]byte, error) {
	var w walBuf
	w.u32(walMagic)
	w.u8(walVersion)
	for _, rec := range recs {
		payload, err := encodePayload(rec)
		if err != nil {
			return nil, err
		}
		w.u64(uint64(rec.LSN))
		w.u8(byte(rec.Type))
		w.u32(uint32(len(payload)))
		w.u32(crc32.ChecksumIEEE(payload))
		w.raw(payload)
	}
	return w.b, nil
}

// DecodeBlob parses a WAL blob back into records, verifying per-record
// checksums.
func DecodeBlob(schema *storage.Schema, blob []byte) ([]*Record, error) {
	r := &walReader{b: blob}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != walMagic {
		return nil, fmt.Errorf("wal: bad magic %#x", magic)
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != walVersion {
		return nil, fmt.Errorf("wal: unsupported version %d", ver)
	}
	var out []*Record
	for r.remain() > 0 {
		lsn, err := r.u64()
		if err != nil {
			return nil, err
		}
		typ, err := r.u8()
		if err != nil {
			return nil, err
		}
		plen, err := r.u32()
		if err != nil {
			return nil, err
		}
		sum, err := r.u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.take(int(plen))
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("wal: checksum mismatch at LSN %d", lsn)
		}
		rec, err := decodePayload(schema, RecordType(typ), payload)
		if err != nil {
			return nil, fmt.Errorf("wal: decoding record LSN %d: %w", lsn, err)
		}
		rec.LSN = int64(lsn)
		out = append(out, rec)
	}
	return out, nil
}
