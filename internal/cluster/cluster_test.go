package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/bitset"
	"blendhouse/internal/index"
	_ "blendhouse/internal/index/flat"
	_ "blendhouse/internal/index/hnsw"
	_ "blendhouse/internal/index/ivf"
	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

const (
	cDim = 16
	cN   = 800
)

// fixture builds a table with several segments and a VW on top.
func fixture(t *testing.T, workers int, serving bool) (*VW, *lsm.Table, *dataset.Dataset) {
	t.Helper()
	remote := storage.NewMemStore()
	ds := dataset.Small(cN, cDim, 11)
	tab, err := lsm.Create(remote, lsm.Options{
		Name: "imgs",
		Schema: &storage.Schema{Columns: []storage.ColumnDef{
			{Name: "id", Type: storage.Int64Type},
			{Name: "embedding", Type: storage.VectorType, Dim: cDim},
		}},
		IndexColumn: "embedding", IndexType: index.HNSW,
		SegmentRows: 100, PipelinedBuild: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := storage.NewRowBatch(tab.Schema())
	for i := 0; i < cN; i++ {
		batch.Col("id").Ints = append(batch.Col("id").Ints, int64(i))
		batch.Col("embedding").Vecs = append(batch.Col("embedding").Vecs, ds.Vectors.Row(i)...)
	}
	if err := tab.Insert(batch); err != nil {
		t.Fatal(err)
	}
	vw := NewVW(VWConfig{Name: "vw-read", Serving: serving}, remote)
	vw.RegisterTable(tab)
	for i := 0; i < workers; i++ {
		if _, err := vw.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return vw, tab, ds
}

// globalSearch runs a distributed search over all segments and maps
// (segment, offset) back to the id column for recall checks.
func globalIDs(t *testing.T, vw *VW, tab *lsm.Table, cands []SegmentCandidate) []int64 {
	t.Helper()
	out := make([]int64, 0, len(cands))
	for _, c := range cands {
		rd, err := tab.Reader(c.Segment)
		if err != nil {
			t.Fatal(err)
		}
		col, err := rd.ReadRows("id", []int{int(c.Offset)})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, col.Ints[0])
	}
	return out
}

func TestDistributedSearchMatchesOracle(t *testing.T) {
	vw, tab, ds := fixture(t, 3, false)
	truth := ds.GroundTruth(tab.Options().IndexParams.Metric, 10, nil)
	got := make([][]int64, ds.Queries.Rows())
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		cands, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(qi), 10, SearchOptions{
			Params: index.SearchParams{Ef: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		got[qi] = globalIDs(t, vw, tab, cands)
	}
	if r := dataset.Recall(truth, got); r < 0.9 {
		t.Fatalf("distributed recall = %.3f", r)
	}
}

func TestSchedulingDeterministicAndBalanced(t *testing.T) {
	vw, tab, _ := fixture(t, 4, false)
	a1 := vw.ScheduleSegments(tab, tab.Segments())
	a2 := vw.ScheduleSegments(tab, tab.Segments())
	if len(a1) == 0 {
		t.Fatal("no assignments")
	}
	for w, segs := range a1 {
		if len(a2[w]) != len(segs) {
			t.Fatal("scheduling not deterministic")
		}
	}
	total := 0
	for _, segs := range a1 {
		total += len(segs)
	}
	if total != tab.SegmentCount() {
		t.Fatalf("assigned %d of %d segments", total, tab.SegmentCount())
	}
}

func TestAddRemoveWorker(t *testing.T) {
	vw, _, _ := fixture(t, 2, false)
	if _, err := vw.AddWorker("w0"); err == nil {
		t.Fatal("duplicate worker should fail")
	}
	if err := vw.RemoveWorker("nope"); err == nil {
		t.Fatal("removing unknown worker should fail")
	}
	if err := vw.RemoveWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if got := vw.Workers(); len(got) != 1 || got[0] != "w0" {
		t.Fatalf("workers = %v", got)
	}
}

func TestWorkerFailureRetriesOnReplica(t *testing.T) {
	vw, tab, ds := fixture(t, 3, false)
	// Kill one worker; queries must still succeed (stateless workers,
	// query-level retry of paper §II-E).
	vw.Worker("w1").Fail()
	cands, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 10, SearchOptions{
		Params: index.SearchParams{Ef: 64},
	})
	if err != nil {
		t.Fatalf("search with dead worker: %v", err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates", len(cands))
	}
	// Recover and confirm it serves again.
	vw.Worker("w1").Recover()
	if _, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(1), 5, SearchOptions{Params: index.SearchParams{Ef: 32}}); err != nil {
		t.Fatal(err)
	}
}

func TestAllWorkersDead(t *testing.T) {
	vw, tab, ds := fixture(t, 2, false)
	vw.Worker("w0").Fail()
	vw.Worker("w1").Fail()
	if _, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 5, SearchOptions{}); err == nil {
		t.Fatal("search with no live workers should fail")
	}
}

func TestPreloadWarmsAssignedWorkers(t *testing.T) {
	vw, tab, _ := fixture(t, 3, false)
	if errs := vw.Preload(tab); len(errs) != 0 {
		t.Fatalf("preload errors: %v", errs)
	}
	assign := vw.ScheduleSegments(tab, tab.Segments())
	for wid, segs := range assign {
		w := vw.Worker(wid)
		for _, m := range segs {
			if !w.HasIndexInMem(tab, m.Name) {
				t.Fatalf("worker %s missing preloaded index of %s", wid, m.Name)
			}
		}
	}
	// Preload must agree with scheduling: remote loads happen exactly
	// once per segment.
	var remoteLoads int64
	for _, wid := range vw.Workers() {
		remoteLoads += vw.Worker(wid).CacheStats().RemoteLoads
	}
	if remoteLoads != int64(tab.SegmentCount()) {
		t.Fatalf("remote loads = %d, want %d", remoteLoads, tab.SegmentCount())
	}
}

func TestVectorSearchServingOnScaleUp(t *testing.T) {
	vw, tab, ds := fixture(t, 2, true)
	if errs := vw.Preload(tab); len(errs) != 0 {
		t.Fatalf("preload: %v", errs)
	}
	// Scale up: w2 joins cold.
	if _, err := vw.AddWorker("w2"); err != nil {
		t.Fatal(err)
	}
	// Some segments now map to w2, whose cache is cold; serving must
	// proxy those scans to the previous owners.
	cands, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 10, SearchOptions{
		Params: index.SearchParams{Ef: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates", len(cands))
	}
	served := vw.Worker("w0").ServedSearches.Load() + vw.Worker("w1").ServedSearches.Load()
	moved := 0
	for _, segs := range vw.ScheduleSegments(tab, tab.Segments()) {
		_ = segs
	}
	for wid, segs := range vw.ScheduleSegments(tab, tab.Segments()) {
		if wid == "w2" {
			moved = len(segs)
		}
	}
	if moved == 0 {
		t.Skip("hash ring moved no segments to the new worker on this topology")
	}
	if served == 0 {
		t.Fatalf("no searches were served via RPC despite %d moved segments", moved)
	}
	// No brute-force fallbacks should have happened.
	for _, wid := range vw.Workers() {
		if n := vw.Worker(wid).BruteSearches.Load(); n != 0 {
			t.Fatalf("worker %s brute-forced %d times", wid, n)
		}
	}
}

func TestServingDisabledLoadsLocally(t *testing.T) {
	vw, tab, ds := fixture(t, 2, true)
	vw.Preload(tab)
	vw.AddWorker("w2")
	before := vw.Worker("w2").CacheStats().RemoteLoads
	_, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 10, SearchOptions{
		Params:         index.SearchParams{Ef: 64},
		DisableServing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// w2 must have loaded its segments itself (remote or disk), not
	// proxied.
	if vw.Worker("w2").ServedSearches.Load() != 0 {
		t.Fatal("serving happened despite DisableServing")
	}
	_ = before
}

func TestTCPServingRoundTrip(t *testing.T) {
	vw, tab, ds := fixture(t, 2, true)
	vw.SetServingConfig(ServingConfig{Transport: TransportTCP})
	for _, wid := range vw.Workers() {
		if _, err := vw.Worker(wid).StartRPC(); err != nil {
			t.Fatal(err)
		}
		defer vw.Worker(wid).StopRPC()
	}
	vw.Preload(tab)
	if _, err := vw.AddWorker("w2"); err != nil {
		t.Fatal(err)
	}
	cands, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(2), 10, SearchOptions{
		Params: index.SearchParams{Ef: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates over TCP serving", len(cands))
	}
}

func TestBruteForceMatchesIndexOnEasyQuery(t *testing.T) {
	vw, tab, ds := fixture(t, 1, false)
	m := tab.Segments()[0]
	w := vw.Worker("w0")
	bf, err := w.BruteForceSearch(context.Background(), tab, m, ds.Queries.Row(0), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := w.SearchSegment(context.Background(), tab, m, ds.Queries.Row(0), 5, index.SearchParams{Ef: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 5 || len(ix) != 5 {
		t.Fatalf("lens %d/%d", len(bf), len(ix))
	}
	// Exact scan is ground truth; HNSW on easy data should agree on
	// the top hit.
	if bf[0].ID != ix[0].ID {
		t.Fatalf("top-1 disagrees: brute %d vs index %d", bf[0].ID, ix[0].ID)
	}
}

func TestSearchWithFilters(t *testing.T) {
	vw, tab, ds := fixture(t, 2, false)
	// Build per-segment filters allowing only even offsets.
	filters := map[string]*bitset.Bitset{}
	for _, m := range tab.Segments() {
		f := bitset.New(m.Rows)
		for i := 0; i < m.Rows; i += 2 {
			f.Set(i)
		}
		filters[m.Name] = f
	}
	cands, err := vw.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 10, SearchOptions{
		Params:  index.SearchParams{Ef: 64},
		Filters: filters,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Offset%2 != 0 {
			t.Fatalf("filtered search returned odd offset %d", c.Offset)
		}
	}
}

func TestPruneSegmentsScalar(t *testing.T) {
	_, tab, _ := fixture(t, 1, false)
	metas := tab.Segments()
	// id ranges are disjoint per segment (sequential fill): prune to
	// ranges covering only low ids.
	kept := PruneSegments(tab, metas, PruneOptions{
		IntRanges: map[string][2]int64{"id": {0, 150}},
	})
	if len(kept) >= len(metas) {
		t.Fatalf("no pruning happened: %d of %d", len(kept), len(metas))
	}
	for _, m := range kept {
		if m.MinInt["id"] > 150 {
			t.Fatal("kept a segment entirely above the range")
		}
	}
	// Unknown column: nothing pruned.
	all := PruneSegments(tab, metas, PruneOptions{IntRanges: map[string][2]int64{"zz": {0, 1}}})
	if len(all) != len(metas) {
		t.Fatal("missing stats must not prune")
	}
}

func TestPruneSegmentsSemantic(t *testing.T) {
	_, tab, ds := fixture(t, 1, false)
	metas := tab.Segments()
	q := ds.Queries.Row(0)
	kept := PruneSegments(tab, metas, PruneOptions{
		QueryVector:      q,
		SemanticFraction: 0.5,
		MinSegments:      1,
	})
	if len(kept) >= len(metas) || len(kept) == 0 {
		t.Fatalf("semantic cut kept %d of %d", len(kept), len(metas))
	}
	// Kept segments must be the nearest-centroid ones.
	for _, km := range kept {
		for _, om := range metas {
			if containsMeta(kept, om) {
				continue
			}
			if centDist(q, om.Centroid) < centDist(q, km.Centroid) {
				t.Fatalf("pruned a closer segment (%s) while keeping %s", om.Name, km.Name)
			}
		}
	}
}

func containsMeta(ms []*storage.SegmentMeta, m *storage.SegmentMeta) bool {
	for _, x := range ms {
		if x.Name == m.Name {
			return true
		}
	}
	return false
}

func centDist(q, c []float32) float32 {
	var s float32
	for i := range q {
		d := q[i] - c[i]
		s += d * d
	}
	return s
}

func TestPruneSegmentsPartition(t *testing.T) {
	_, tab, _ := fixture(t, 1, false)
	metas := tab.Segments()
	kept := PruneSegments(tab, metas, PruneOptions{Partitions: map[string]bool{}})
	if len(kept) != 0 {
		t.Fatal("empty partition set should prune everything")
	}
	kept = PruneSegments(tab, metas, PruneOptions{Partitions: map[string]bool{"": true}})
	if len(kept) != len(metas) {
		t.Fatal("matching partition should keep all")
	}
}

func TestRPCErrorPaths(t *testing.T) {
	vw, tab, ds := fixture(t, 2, true)
	vw.SetServingConfig(ServingConfig{Transport: TransportTCP})
	w0 := vw.Worker("w0")
	if _, err := w0.StartRPC(); err != nil {
		t.Fatal(err)
	}
	defer w0.StopRPC()
	svc := &SearchService{w: w0}
	var reply SearchReply
	// Unknown table.
	if err := svc.Search(&SearchArgs{Table: "nope", Segment: "x", Query: ds.Queries.Row(0), K: 5}, &reply); err == nil {
		t.Fatal("unknown table should fail")
	}
	// Unknown segment.
	if err := svc.Search(&SearchArgs{Table: tab.Name(), Segment: "nope", Query: ds.Queries.Row(0), K: 5}, &reply); err == nil {
		t.Fatal("unknown segment should fail")
	}
	// Corrupt filter bytes.
	seg := tab.Segments()[0].Name
	if err := svc.Search(&SearchArgs{Table: tab.Name(), Segment: seg, Query: ds.Queries.Row(0), K: 5, Filter: []byte{1, 2}}, &reply); err == nil {
		t.Fatal("corrupt filter should fail")
	}
	// Valid request through the service directly.
	if err := svc.Search(&SearchArgs{Table: tab.Name(), Segment: seg, Query: ds.Queries.Row(0), K: 5, Ef: 32}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.IDs) != 5 || len(reply.Dists) != 5 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestWorkerSlotsLimitConcurrency(t *testing.T) {
	remote := storage.NewMemStore()
	vw := NewVW(VWConfig{Name: "v", WorkerSlots: 1, SimulatedScanCost: 20 * time.Millisecond}, remote)
	w, err := vw.AddWorker("w0")
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent acquires with 1 slot and 20ms service time must
	// serialize to >= 40ms.
	start := time.Now()
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			release, err := w.acquire(nil)
			if err != nil {
				t.Error(err)
			} else {
				release()
			}
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if wall := time.Since(start); wall < 35*time.Millisecond {
		t.Fatalf("slots did not serialize: %v", wall)
	}
}

func TestPreviousOwnerTracking(t *testing.T) {
	vw, tab, _ := fixture(t, 2, true)
	vw.ScheduleSegments(tab, tab.Segments())
	seg := tab.Segments()[0].Name
	ownerBefore := ""
	for wid, segs := range vw.ScheduleSegments(tab, tab.Segments()) {
		for _, m := range segs {
			if m.Name == seg {
				ownerBefore = wid
			}
		}
	}
	if _, err := vw.AddWorker("w9"); err != nil {
		t.Fatal(err)
	}
	if got := vw.PreviousOwner(tab, seg); got != ownerBefore {
		t.Fatalf("PreviousOwner = %q, want %q", got, ownerBefore)
	}
}

func TestMirroredVWFailover(t *testing.T) {
	vwA, tab, ds := fixture(t, 2, false)
	// Second replica over the same shared store.
	vwB := NewVW(VWConfig{Name: "vw-replica"}, tab.Store())
	vwB.RegisterTable(tab)
	for i := 0; i < 2; i++ {
		if _, err := vwB.AddWorker(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMirroredVW(vwA, vwB)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Preload(tab); len(errs) != 0 {
		t.Fatalf("preload: %v", errs)
	}
	opts := SearchOptions{Params: index.SearchParams{Ef: 64}}
	// Healthy primary: served by A.
	if _, err := m.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(0), 10, opts); err != nil {
		t.Fatal(err)
	}
	// Kill every worker in A: queries fail over to B.
	vwA.Worker("w0").Fail()
	vwA.Worker("w1").Fail()
	res, err := m.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(1), 10, opts)
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	if len(res) != 10 {
		t.Fatalf("failover got %d candidates", len(res))
	}
	// Kill B too: total failure surfaces an error naming both replicas.
	vwB.Worker("r0").Fail()
	vwB.Worker("r1").Fail()
	if _, err := m.Search(context.Background(), tab, tab.Segments(), ds.Queries.Row(2), 10, opts); err == nil {
		t.Fatal("all-replica failure should error")
	}
	if _, err := NewMirroredVW(); err == nil {
		t.Fatal("empty mirror should fail")
	}
}
