package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blendhouse/internal/baseline"
	"blendhouse/internal/baseline/bh"
	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/cluster"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

func init() {
	register("fig11", "Latency: local cache hit vs vector-search-serving RPC vs brute force", runFig11)
	register("fig12", "Read QPS interference: isolated vs mixed read/write workload", runFig12)
	register("fig14", "Impact of updates and compaction on search performance", runFig14)
}

// clusterFixture builds a table over a latency-modeled shared store
// and a VW on top of it.
func clusterFixture(cfg Config, workers int, serving bool, ds *dataset.Dataset) (*cluster.VW, *lsm.Table, error) {
	return clusterFixtureScan(cfg, workers, serving, ds, 0, 0)
}

// clusterFixtureScan additionally sets the simulated per-scan service
// time (used only by the elasticity experiment; see VWConfig docs).
func clusterFixtureScan(cfg Config, workers int, serving bool, ds *dataset.Dataset, scanCost, postCost time.Duration) (*cluster.VW, *lsm.Table, error) {
	segRows := 1000
	if postCost > 0 {
		// The elasticity run wants enough segments for the hash ring to
		// balance across 4 workers.
		segRows = ds.Vectors.Rows()/24 + 1
	}
	remote := remoteStore()
	tab, err := lsm.Create(remote, lsm.Options{
		Name: "t",
		Schema: &storage.Schema{Columns: []storage.ColumnDef{
			{Name: "id", Type: storage.Int64Type},
			{Name: "embedding", Type: storage.VectorType, Dim: ds.Spec.Dim},
		}},
		IndexColumn: "embedding", IndexType: index.HNSW,
		IndexParams: index.BuildParams{M: 12, EfConstruction: 120, Seed: cfg.Seed},
		SegmentRows: segRows, PipelinedBuild: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	batch := storage.NewRowBatch(tab.Schema())
	n := ds.Vectors.Rows()
	for i := 0; i < n; i++ {
		batch.Col("id").Ints = append(batch.Col("id").Ints, int64(i))
	}
	batch.Col("embedding").Vecs = append(batch.Col("embedding").Vecs, ds.Vectors.Data...)
	if err := tab.Insert(batch); err != nil {
		return nil, nil, err
	}
	vw := cluster.NewVW(cluster.VWConfig{Name: "read", Serving: serving, SimulatedScanCost: scanCost, SimulatedPostCost: postCost}, remote)
	vw.RegisterTable(tab)
	for i := 0; i < workers; i++ {
		if _, err := vw.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
			return nil, nil, err
		}
	}
	return vw, tab, nil
}

// runFig11 reproduces Figure 11: per-query latency under three
// regimes — warm local index cache, vector search serving over a real
// TCP RPC to the previous owner, and the brute-force fallback that
// reads raw vectors from remote storage. The paper measures 14.5x for
// brute force vs +16.6% for serving.
func runFig11(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig11", Title: "Latency of local search, vector search serving, brute force",
		Headers: []string{"mode", "mean latency", "vs local"}}
	rep.Note("paper Fig 11: brute force = 14.5x local; serving = +16.6%%; shape check = brute >> serving ≳ local")
	ds := dataset.Generate(dataset.Spec{Name: "fig11", N: cfg.n(8000), Dim: 96, Queries: cfg.Queries, Seed: cfg.Seed})
	vw, tab, err := clusterFixture(cfg, 2, true, ds)
	if err != nil {
		return nil, err
	}
	vw.SetServingConfig(cluster.ServingConfig{Transport: cluster.TransportTCP})
	for _, wid := range vw.Workers() {
		if _, err := vw.Worker(wid).StartRPC(); err != nil {
			return nil, err
		}
		defer vw.Worker(wid).StopRPC()
	}
	if errs := vw.Preload(tab); len(errs) != 0 {
		return nil, fmt.Errorf("preload: %v", errs[0])
	}
	metas := tab.Segments()
	params := index.SearchParams{Ef: 64}
	measure := func(opts cluster.SearchOptions) (time.Duration, error) {
		t, err := MeasureSerial(cfg.Queries, func(qi int) error {
			_, err := vw.Search(context.Background(), tab, metas, ds.Queries.Row(qi%ds.Queries.Rows()), 10, opts)
			return err
		})
		return t.Mean, err
	}
	local, err := measure(cluster.SearchOptions{Params: params})
	if err != nil {
		return nil, err
	}
	// Scale up: w2 joins cold; its segments are proxied to previous
	// owners via the serving RPC.
	if _, err := vw.AddWorker("w2"); err != nil {
		return nil, err
	}
	if _, err := vw.Worker("w2").StartRPC(); err != nil {
		return nil, err
	}
	defer vw.Worker("w2").StopRPC()
	serving, err := measure(cluster.SearchOptions{Params: params})
	if err != nil {
		return nil, err
	}
	brute, err := measure(cluster.SearchOptions{Params: params, ForceBruteForce: true})
	if err != nil {
		return nil, err
	}
	rep.AddRow("local (cache hit)", fmt.Sprint(local), "1.00x")
	rep.AddRow("vector search serving", fmt.Sprint(serving), fmt.Sprintf("%.2fx", float64(serving)/float64(local)))
	rep.AddRow("brute force fallback", fmt.Sprint(brute), fmt.Sprintf("%.2fx", float64(brute)/float64(local)))
	rep.Note("shape holds (brute > serving >= ~local): %v", brute > 2*serving && serving < 3*local)
	return rep, nil
}

// runFig12 reproduces Figure 12: read QPS as concurrent write load
// grows when reads and writes share a VW (mixed), vs the flat QPS of
// a dedicated read VW (isolated). The disaggregated architecture lets
// BlendHouse provision separate VWs, eliminating the interference.
func runFig12(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig12", Title: "Read QPS under mixed vs isolated write load",
		Headers: []string{"write concurrency", "isolated QPS", "mixed QPS", "mixed/isolated"}}
	rep.Note("paper Fig 12: higher write concurrency degrades mixed-VW read QPS; dedicated VWs stay flat")
	ds := dataset.Generate(dataset.Spec{Name: "fig12", N: cfg.n(6000), Dim: 96, Queries: cfg.Queries, Seed: cfg.Seed})
	n := ds.Vectors.Rows()
	readStore := bh.New(bh.Config{TableName: "read", SegmentRows: 1500, Seed: cfg.Seed, M: 12, EfConstr: 120}, storage.NewMemStore())
	if err := readStore.Load(ds.Vectors.Data, ds.Spec.Dim, seqAttrs(n)); err != nil {
		return nil, err
	}
	params := index.SearchParams{Ef: 64}
	runReads := func() (float64, error) {
		t, err := MeasureSerial(cfg.Queries*2, func(qi int) error {
			_, err := readStore.Search(ds.Queries.Row(qi%ds.Queries.Rows()), 10, baseline.AttrMin, baseline.AttrMax, params)
			return err
		})
		return t.QPS, err
	}
	// Warm index caches and planner calibration before any measurement.
	if _, err := runReads(); err != nil {
		return nil, err
	}
	isolated, err := runReads()
	if err != nil {
		return nil, err
	}
	writeBatchRows := 400
	for _, wc := range []int{1, 2, 4} {
		// Mixed: wc background writers ingest into a co-located table
		// while reads run (sharing the VW's CPU).
		stop := make(chan struct{})
		var writerErr atomic.Value
		var wg sync.WaitGroup
		for w := 0; w < wc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; ; round++ {
					select {
					case <-stop:
						return
					default:
					}
					sub := dataset.Generate(dataset.Spec{Name: "wr", N: writeBatchRows, Dim: ds.Spec.Dim, Queries: 1, Seed: cfg.Seed + int64(w*1000+round)})
					wtab := bh.New(bh.Config{TableName: fmt.Sprintf("write%d_%d", w, round), SegmentRows: writeBatchRows, Seed: cfg.Seed, M: 12, EfConstr: 120}, storage.NewMemStore())
					if err := wtab.Load(sub.Vectors.Data, ds.Spec.Dim, seqAttrs(writeBatchRows)); err != nil {
						writerErr.Store(err)
						return
					}
				}
			}(w)
		}
		mixed, err := runReads()
		close(stop)
		wg.Wait()
		if err != nil {
			return nil, err
		}
		if we := writerErr.Load(); we != nil {
			return nil, we.(error)
		}
		rep.AddRow(fmt.Sprint(wc), fmtQPS(isolated), fmtQPS(mixed), fmt.Sprintf("%.2f", mixed/isolated))
	}
	return rep, nil
}

// runFig14 reproduces Figure 14: search QPS as the fraction of
// updated rows grows (compaction disabled — delete-bitmap and version
// overhead accumulate), then after compaction (performance restored).
func runFig14(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig14", Title: "Impact of updates and compaction on search QPS",
		Headers: []string{"updated rows", "compaction", "segments", "QPS", "recall@10"}}
	rep.Note("paper Fig 14: QPS degrades as updates accumulate; compaction restores it")
	ds := dataset.Generate(dataset.Spec{Name: "fig14", N: cfg.n(6000), Dim: 96, Queries: cfg.Queries, Seed: cfg.Seed})
	n := ds.Vectors.Rows()
	s := bh.New(bh.Config{TableName: "t", SegmentRows: 1500, Seed: cfg.Seed, M: 12, EfConstr: 120}, storage.NewMemStore())
	if err := s.Load(ds.Vectors.Data, ds.Spec.Dim, seqAttrs(n)); err != nil {
		return nil, err
	}
	truth := ds.GroundTruth(datasetMetric, 10, nil)
	params := index.SearchParams{Ef: 64}
	measure := func() (float64, float64, error) {
		// One warm query absorbs index (re)loads before timing starts.
		if _, err := s.Search(ds.Queries.Row(0), 10, baseline.AttrMin, baseline.AttrMax, params); err != nil {
			return 0, 0, err
		}
		got := make([][]int64, ds.Queries.Rows())
		t, err := MeasureSerial(ds.Queries.Rows(), func(qi int) error {
			ids, err := s.Search(ds.Queries.Row(qi), 10, baseline.AttrMin, baseline.AttrMax, params)
			if err != nil {
				return err
			}
			got[qi] = ids
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		return t.QPS, dataset.Recall(truth, got), nil
	}
	// Warm caches and calibration, then take the baseline.
	if _, _, err := measure(); err != nil {
		return nil, err
	}
	qps0, r0, err := measure()
	if err != nil {
		return nil, err
	}
	rep.AddRow("0", "n/a", fmt.Sprint(s.Table().SegmentCount()), fmtQPS(qps0), fmtRecall(r0))

	tab := s.Table()
	schema := tab.Schema()
	updated := 0
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		target := int(frac * float64(n))
		// Update rows [updated, target) in place: same id + same
		// vector (so ground truth stays valid), new version.
		batch := storage.NewRowBatch(schema)
		for i := updated; i < target; i++ {
			batch.Col("id").Ints = append(batch.Col("id").Ints, int64(i))
			batch.Col("attr").Ints = append(batch.Col("attr").Ints, int64(i))
			batch.Col("embedding").Vecs = append(batch.Col("embedding").Vecs, ds.Vectors.Row(i)...)
		}
		if _, err := tab.Update("id", batch); err != nil {
			return nil, err
		}
		updated = target
		s.Executor().InvalidateLocalIndexes()
		qps, r, err := measure()
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%d%%", int(frac*100)), "disabled", fmt.Sprint(tab.SegmentCount()), fmtQPS(qps), fmtRecall(r))
	}
	// Enable compaction: merge everything, QPS restores.
	if _, err := tab.CompactAll(lsm.CompactionPolicy{MinSegments: 2, MaxMergeRows: 1 << 20}); err != nil {
		return nil, err
	}
	s.Executor().InvalidateLocalIndexes()
	qpsC, rC, err := measure()
	if err != nil {
		return nil, err
	}
	rep.AddRow("20%", "enabled", fmt.Sprint(tab.SegmentCount()), fmtQPS(qpsC), fmtRecall(rC))
	rep.Note("restored-by-compaction shape holds: %v", qpsC > qps0*0.7)
	return rep, nil
}
