package lsm

import (
	"math"

	"blendhouse/internal/storage"
)

// Histogram is a fixed-width equi-range histogram over a numeric
// column, maintained incrementally at ingest time. The cost-based
// optimizer estimates the selectivity `s` of range predicates from it
// (paper Table II: "estimated with histograms"). Bounds widen as new
// data arrives; counts are approximate after widening, which is fine —
// the CBO needs the right order of magnitude, not exactness.
type Histogram struct {
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Total   int64   `json:"total"`
	Buckets []int64 `json:"buckets"`
}

// histBuckets is the bucket count for all column histograms.
const histBuckets = 64

// newHistogram returns an empty histogram.
func newHistogram() *Histogram {
	return &Histogram{Min: math.Inf(1), Max: math.Inf(-1), Buckets: make([]int64, histBuckets)}
}

// add records values, rescaling the bucket range when the observed
// min/max widen. Rescaling redistributes existing counts
// proportionally — approximate, but monotone in total mass.
func (h *Histogram) add(vals []float64) {
	if len(vals) == 0 {
		return
	}
	lo, hi := h.Min, h.Max
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < h.Min || hi > h.Max {
		h.rescale(lo, hi)
	}
	width := (h.Max - h.Min) / histBuckets
	for _, v := range vals {
		b := 0
		if width > 0 {
			b = int((v - h.Min) / width)
			if b >= histBuckets {
				b = histBuckets - 1
			}
			if b < 0 {
				b = 0
			}
		}
		h.Buckets[b]++
		h.Total++
	}
}

// rescale widens the range, remapping existing bucket mass.
func (h *Histogram) rescale(lo, hi float64) {
	if h.Total == 0 {
		h.Min, h.Max = lo, hi
		return
	}
	oldMin, oldMax := h.Min, h.Max
	oldW := (oldMax - oldMin) / histBuckets
	newBuckets := make([]int64, histBuckets)
	newW := (hi - lo) / histBuckets
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		center := oldMin + (float64(b)+0.5)*oldW
		nb := 0
		if newW > 0 {
			nb = int((center - lo) / newW)
			if nb >= histBuckets {
				nb = histBuckets - 1
			}
			if nb < 0 {
				nb = 0
			}
		}
		newBuckets[nb] += c
	}
	h.Min, h.Max, h.Buckets = lo, hi, newBuckets
}

// Selectivity estimates the fraction of rows with lo <= v <= hi,
// interpolating partial buckets. Open ends use ±Inf.
func (h *Histogram) Selectivity(lo, hi float64) float64 {
	if h == nil || h.Total == 0 {
		return 1
	}
	if hi < h.Min || lo > h.Max {
		return 0
	}
	if lo < h.Min {
		lo = h.Min
	}
	if hi > h.Max {
		hi = h.Max
	}
	width := (h.Max - h.Min) / histBuckets
	if width == 0 {
		// Degenerate single-value column.
		if lo <= h.Min && hi >= h.Max {
			return 1
		}
		return 0
	}
	var count float64
	for b, c := range h.Buckets {
		bLo := h.Min + float64(b)*width
		bHi := bLo + width
		overlap := math.Min(hi, bHi) - math.Max(lo, bLo)
		if overlap <= 0 {
			continue
		}
		count += float64(c) * overlap / width
	}
	s := count / float64(h.Total)
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// updateHistogramsLocked folds a batch's numeric columns into the
// table histograms. Caller holds t.mu.
func (t *Table) updateHistogramsLocked(batch *storage.RowBatch) {
	for _, col := range batch.Cols {
		var vals []float64
		switch col.Def.Type {
		case storage.Int64Type, storage.DateTimeType:
			vals = make([]float64, len(col.Ints))
			for i, v := range col.Ints {
				vals[i] = float64(v)
			}
		case storage.Float64Type:
			vals = col.Floats
		default:
			continue
		}
		h := t.hist[col.Def.Name]
		if h == nil {
			h = newHistogram()
			t.hist[col.Def.Name] = h
		}
		h.add(vals)
	}
}

// HistogramFor returns the column's histogram, or nil when the column
// is non-numeric or no data has been ingested.
func (t *Table) HistogramFor(col string) *Histogram {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hist[col]
}

// EstimateIntSelectivity is the CBO entry point for integer range
// predicates; unbounded sides pass math.MinInt64 / math.MaxInt64.
func (t *Table) EstimateIntSelectivity(col string, lo, hi int64) float64 {
	h := t.HistogramFor(col)
	flo, fhi := float64(lo), float64(hi)
	if lo == math.MinInt64 {
		flo = math.Inf(-1)
	}
	if hi == math.MaxInt64 {
		fhi = math.Inf(1)
	}
	return h.Selectivity(flo, fhi)
}

// EstimateFloatSelectivity is EstimateIntSelectivity for floats.
func (t *Table) EstimateFloatSelectivity(col string, lo, hi float64) float64 {
	return t.HistogramFor(col).Selectivity(lo, hi)
}
