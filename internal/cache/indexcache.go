package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
)

// IndexLoader deserializes an index blob into a searchable object.
// The engine supplies a closure that constructs the right index type
// for the segment and calls its Load method.
type IndexLoader func(blob []byte) (any, int64, error)

// HierStats counts where index lookups were satisfied, feeding the
// cache-miss experiment (paper Fig 11) and the elasticity runs.
type HierStats struct {
	MemHits     int64
	DiskHits    int64
	RemoteLoads int64
	Failures    int64
}

// IndexCache is the hierarchical vector-index cache of paper §II-D:
// an in-memory tier for searchable indexes, a local-disk tier holding
// raw blobs to avoid repeated remote reads, and the remote shared
// store as the source of truth. Metadata (segment metas, small
// per-index headers) lives in a separate memory space from index data
// so the two access patterns don't evict each other.
type IndexCache struct {
	mem        *LRU // deserialized indexes, keyed by blob key
	meta       *LRU // small metadata entries, separate space
	disk       storage.BlobStore
	diskBudget *LRU // tracks which keys are on local disk, size-aware
	remote     storage.BlobStore

	loadMu sync.Mutex // serializes remote loads of the same key (simple global single-flight)

	memHits, diskHits, remoteLoads, failures atomic.Int64
}

// Config sizes the tiers. Zero disables a tier.
type Config struct {
	MemBytes  int64
	MetaBytes int64
	DiskBytes int64
}

// DefaultConfig suits a worker with a few GB of RAM.
func DefaultConfig() Config {
	return Config{MemBytes: 1 << 30, MetaBytes: 64 << 20, DiskBytes: 4 << 30}
}

// NewIndexCache builds the hierarchy. disk may be nil to run
// memory-over-remote only.
func NewIndexCache(cfg Config, disk, remote storage.BlobStore) *IndexCache {
	c := &IndexCache{
		mem:    NewLRU(cfg.MemBytes),
		meta:   NewLRU(cfg.MetaBytes),
		disk:   disk,
		remote: remote,
	}
	if disk != nil {
		c.diskBudget = NewLRU(cfg.DiskBytes)
		c.diskBudget.SetOnEvict(func(key string, _ any) {
			// Budget exceeded: drop the local copy; remote remains.
			// Safe against the evict-vs-reinsert race in the SetOnEvict
			// contract: every diskBudget.Put happens under loadMu (in
			// fetchBlob), so this callback — which runs inside that Put —
			// cannot interleave with a re-insert of the same key.
			_ = disk.Delete(key)
		})
	}
	return c
}

// Stats snapshots the tier counters.
func (c *IndexCache) Stats() HierStats {
	return HierStats{
		MemHits:     c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		RemoteLoads: c.remoteLoads.Load(),
		Failures:    c.failures.Load(),
	}
}

// ContainsMem reports whether key's index is resident in memory —
// the scheduler uses this to detect cache misses without forcing a
// load.
func (c *IndexCache) ContainsMem(key string) bool {
	return c.mem.Contains(key)
}

// Get returns the deserialized index for key, loading through the
// tiers as needed: memory → local disk → remote. The loader runs at
// most once per miss; its reported size drives memory accounting.
func (c *IndexCache) Get(key string, loader IndexLoader) (any, error) {
	return c.GetTally(nil, key, loader, nil)
}

// GetTally is Get with a context bounding the remote blob fetch on a
// miss (nil = unbounded) and an optional per-query trace tally (nil =
// untraced): a memory-tier hit tallies Hit, anything that had to load
// from disk or remote tallies Miss.
func (c *IndexCache) GetTally(ctx context.Context, key string, loader IndexLoader, tally *obs.CacheTally) (any, error) {
	if v, ok := c.mem.Get(key); ok {
		c.memHits.Add(1)
		tally.Hit()
		return v, nil
	}
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	// Re-check under the load lock: another goroutine may have won.
	if v, ok := c.mem.Get(key); ok {
		c.memHits.Add(1)
		tally.Hit()
		return v, nil
	}
	tally.Miss()
	blob, fromDisk, err := c.fetchBlob(ctx, key)
	if err != nil {
		c.failures.Add(1)
		return nil, err
	}
	if fromDisk {
		c.diskHits.Add(1)
	} else {
		c.remoteLoads.Add(1)
	}
	v, size, err := loader(blob)
	if err != nil {
		c.failures.Add(1)
		return nil, fmt.Errorf("cache: deserializing %s: %w", key, err)
	}
	c.mem.Put(key, v, size)
	return v, nil
}

// fetchBlob reads the raw index blob, preferring local disk, and
// populates the disk tier on a remote read.
func (c *IndexCache) fetchBlob(ctx context.Context, key string) (blob []byte, fromDisk bool, err error) {
	if c.disk != nil {
		if blob, err := c.disk.Get(key); err == nil {
			return blob, true, nil
		} else if !storage.IsNotFound(err) {
			return nil, false, err
		}
	}
	blob, err = storage.GetCtx(ctx, c.remote, key)
	if err != nil {
		return nil, false, err
	}
	if c.disk != nil {
		if err := c.disk.Put(key, blob); err == nil {
			c.diskBudget.Put(key, struct{}{}, int64(len(blob)))
		}
	}
	return blob, false, nil
}

// Preload pulls keys through the hierarchy ahead of queries (the
// cache-aware preload of paper §II-D). Errors are collected, not
// fatal: preload is best-effort.
func (c *IndexCache) Preload(keys []string, loader func(key string) IndexLoader) []error {
	var errs []error
	for _, k := range keys {
		if _, err := c.Get(k, loader(k)); err != nil {
			errs = append(errs, fmt.Errorf("preload %s: %w", k, err))
		}
	}
	return errs
}

// Invalidate drops a key from memory and local disk (used when a
// segment is compacted away).
func (c *IndexCache) Invalidate(key string) {
	c.mem.Remove(key)
	if c.disk != nil {
		_ = c.disk.Delete(key)
		c.diskBudget.Remove(key)
	}
}

// PutMeta / GetMeta manage the separate metadata space.
func (c *IndexCache) PutMeta(key string, v any, size int64) { c.meta.Put(key, v, size) }

// GetMeta returns a metadata entry.
func (c *IndexCache) GetMeta(key string) (any, bool) { return c.meta.Get(key) }

// DropMem removes only the in-memory entry, keeping the disk copy —
// simulates a worker restart for the cache-miss experiments.
func (c *IndexCache) DropMem(key string) { c.mem.Remove(key) }

// PurgeMem empties the in-memory tier (worker restart simulation).
func (c *IndexCache) PurgeMem() { c.mem.Purge() }
