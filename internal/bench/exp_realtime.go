package bench

import (
	"context"
	"fmt"
	"time"

	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

func init() {
	register("realtime", "Small-batch ingest throughput and freshness: WAL group commit vs synchronous segment cutting (PR 4)", runRealtime)
}

// rtBatchRows is the per-INSERT batch size: small, as in a streaming
// workload — the regime where cutting a segment (and building its
// index) per statement is pathological.
const rtBatchRows = 8

// runRealtime compares the two ingest paths on identical tables: the
// synchronous path (every INSERT cuts segments and builds indexes
// inline) against the real-time write path (group-committed WAL +
// memtable, segments cut by the background flusher). Ack latency IS
// freshness latency on both paths: a returned insert is query-visible
// (the memtable tests prove it), so rows/s at ack is the number that
// matters for a streaming writer.
func runRealtime(cfg Config) (*Report, error) {
	ds := cohereLike(cfg)
	dim := ds.Spec.Dim
	schema := &storage.Schema{Columns: []storage.ColumnDef{
		{Name: "id", Type: storage.Int64Type},
		{Name: "embedding", Type: storage.VectorType, Dim: dim},
	}}
	newTable := func(name string) (*lsm.Table, error) {
		return lsm.Create(storage.NewMemStore(), lsm.Options{
			Name: name, Schema: schema, IndexColumn: "embedding", IndexType: index.HNSW,
			SegmentRows: 2000, PipelinedBuild: true, Seed: cfg.Seed,
		})
	}
	batchFor := func(op int) *storage.RowBatch {
		b := storage.NewRowBatch(schema)
		for r := 0; r < rtBatchRows; r++ {
			i := op*rtBatchRows + r
			b.Col("id").Ints = append(b.Col("id").Ints, int64(i))
			b.Col("embedding").Vecs = append(b.Col("embedding").Vecs, ds.Vectors.Row(i%ds.Vectors.Rows())...)
		}
		return b
	}
	ops := cfg.n(4000) / rtBatchRows

	rep := &Report{
		ID:      "realtime",
		Title:   "Small-batch insert throughput/ack-latency: WAL vs synchronous segments",
		Headers: []string{"writers", "path", "rows_per_s", "ack_mean_ms", "ack_p99_ms"},
	}
	ctx := context.Background()
	speedups := map[int]float64{}
	for _, writers := range []int{1, 4} {
		var syncRows float64
		for _, mode := range []string{"sync", "wal"} {
			tab, err := newTable(fmt.Sprintf("rt_%s_%d", mode, writers))
			if err != nil {
				return nil, err
			}
			if mode == "wal" {
				if err := tab.EnableWAL(lsm.WALConfig{
					MaxMemRows: 4096, FlushInterval: 200 * time.Millisecond,
				}); err != nil {
					return nil, err
				}
			}
			tm, err := MeasureConcurrent(ops, writers, func(op int) error {
				return tab.InsertCtx(ctx, batchFor(op))
			})
			if err != nil {
				return nil, err
			}
			if mode == "wal" {
				// Drain outside the measured window (the real system flushes
				// concurrently; acked rows are already durable + visible).
				if err := tab.CloseWAL(); err != nil {
					return nil, err
				}
			}
			if got, want := tab.Rows(), ops*rtBatchRows; got != want {
				return nil, fmt.Errorf("realtime: %s/%d flushed %d rows, want %d", mode, writers, got, want)
			}
			rowsPerS := tm.QPS * rtBatchRows
			if mode == "sync" {
				syncRows = rowsPerS
			} else if syncRows > 0 {
				speedups[writers] = rowsPerS / syncRows
			}
			rep.AddRow(fmt.Sprint(writers), mode,
				fmt.Sprintf("%.0f", rowsPerS),
				fmt.Sprintf("%.3f", float64(tm.Mean.Microseconds())/1000),
				fmt.Sprintf("%.3f", float64(tm.P99.Microseconds())/1000))
		}
	}
	rep.Note("%d inserts of %d rows each per point; WAL config: 4096-row memtable, 200ms flush interval, group commit coalescing up to %d records",
		ops, rtBatchRows, 64)
	for _, w := range []int{1, 4} {
		rep.Note("shape check: WAL path ≥ 2x sync rows/s at %d writers (measured %.1fx)", w, speedups[w])
	}
	rep.Note("ack ⇒ durable (fsynced WAL blob) and query-visible (memtable), so ack latency is the freshness latency a streaming writer observes")
	return rep, nil
}
