module blendhouse

go 1.22
