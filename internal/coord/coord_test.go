package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"blendhouse/internal/core"
	"blendhouse/internal/obs"
	"blendhouse/internal/server"
	"blendhouse/internal/storage"
	"blendhouse/pkg/client"
)

const tDim = 8

// row is one deterministic test row.
type row struct {
	id    int64
	label string
	vec   []float32
}

// genRows builds n rows with pseudo-random embeddings (fixed seed):
// random vectors make all pairwise distances distinct almost surely,
// so merge order is decided by distance alone — the regime the
// byte-identity property is about.
func genRows(n int) []row {
	rng := rand.New(rand.NewSource(42))
	out := make([]row, n)
	for i := range out {
		v := make([]float32, tDim)
		for d := range v {
			v[d] = rng.Float32()
		}
		out[i] = row{id: int64(i), label: fmt.Sprintf("l%d", i%4), vec: v}
	}
	return out
}

func vecLit(v []float32) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = strconv.FormatFloat(float64(f), 'g', -1, 32)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func createStmt() string {
	return fmt.Sprintf(`CREATE TABLE items (
		id UInt64,
		label String,
		embedding Array(Float32),
		INDEX ann_idx embedding TYPE FLAT('DIM=%d')
	) ORDER BY id`, tDim)
}

func insertStmt(rows []row) string {
	var b strings.Builder
	b.WriteString("INSERT INTO items VALUES ")
	for i, r := range rows {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%d, '%s', %s)", r.id, r.label, vecLit(r.vec))
	}
	return b.String()
}

func annQuery(k int) string {
	q := make([]float32, tDim)
	for d := range q {
		q[d] = 0.5
	}
	return fmt.Sprintf("SELECT id, label FROM items ORDER BY L2Distance(embedding, %s) LIMIT %d", vecLit(q), k)
}

// cluster is n shard servers plus a coordinator server, all in-process
// on loopback listeners.
type cluster struct {
	engines   []*core.Engine
	shardSrvs []*server.Server
	co        *Coordinator
	srv       *server.Server
	cli       *client.Client
}

func startCluster(t testing.TB, shards, replicas int) *cluster {
	t.Helper()
	cl := &cluster{}
	var addrs []string
	for i := 0; i < shards; i++ {
		e, err := core.New(core.Config{Store: storage.NewMemStore(), SegmentRows: 25, TraceSample: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.New(server.Config{Engine: e, Addr: "127.0.0.1:0", DrainTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Drain() })
		cl.engines = append(cl.engines, e)
		cl.shardSrvs = append(cl.shardSrvs, s)
		addrs = append(addrs, "http://"+s.Addr())
	}
	co, err := New(Config{
		Shards:          addrs,
		Replicas:        replicas,
		MaxRetries:      1,
		RetryBase:       2 * time.Millisecond,
		BreakerCooldown: 150 * time.Millisecond,
		TraceSample:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	srv, err := server.New(server.Config{Backend: co, Addr: "127.0.0.1:0", DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Drain() })
	cli, err := client.New(client.Config{BaseURL: "http://" + srv.Addr(), MaxRetries: 1, RetryBase: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	cl.co, cl.srv, cl.cli = co, srv, cli
	return cl
}

func (cl *cluster) mustExec(t testing.TB, stmt string) *client.Result {
	t.Helper()
	res, err := cl.cli.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("exec %.40q: %v", stmt, err)
	}
	return res
}

// startSingle boots one engine+server seeded with the same statements,
// the byte-identity reference.
func startSingle(t testing.TB, stmts ...string) *client.Client {
	t.Helper()
	e, err := core.New(core.Config{Store: storage.NewMemStore(), SegmentRows: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range stmts {
		if _, err := e.Exec(context.Background(), stmt); err != nil {
			t.Fatalf("single-node exec %.40q: %v", stmt, err)
		}
	}
	s, err := server.New(server.Config{Engine: e, Addr: "127.0.0.1:0", DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Drain() })
	cli, err := client.New(client.Config{BaseURL: "http://" + s.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return cli
}

func marshalResult(t testing.TB, res *client.Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}{res.Columns, res.Rows})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTopKByteIdenticalToSingleNode is the PR's property test: for
// shard counts {1,2,3,5} and k in {1,10,100}, a vector top-k through
// the coordinator is byte-identical (canonical JSON of columns+rows)
// to a single-node engine over the union of the same rows. FLAT (exact
// search) makes the candidate sets equal; the property under test is
// the coordinator's merge discipline.
func TestTopKByteIdenticalToSingleNode(t *testing.T) {
	rows := genRows(150)
	create, insert := createStmt(), insertStmt(rows)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3, 5} {
		cl := startCluster(t, shards, 1)
		cl.mustExec(t, create)
		cl.mustExec(t, insert)
		single := startSingle(t, create, insert)
		queries := []string{}
		for _, k := range []int{1, 10, 100} {
			queries = append(queries, annQuery(k))
		}
		// Beyond the required matrix: alias + star projections and a
		// scalar ORDER BY, same byte-identity contract.
		q := make([]float32, tDim)
		for d := range q {
			q[d] = 0.5
		}
		queries = append(queries,
			fmt.Sprintf("SELECT id, label, dist FROM items ORDER BY L2Distance(embedding, %s) AS dist LIMIT 10", vecLit(q)),
			fmt.Sprintf("SELECT * FROM items ORDER BY L2Distance(embedding, %s) AS dist LIMIT 10", vecLit(q)),
			fmt.Sprintf("SELECT * FROM items ORDER BY L2Distance(embedding, %s) LIMIT 10", vecLit(q)),
			fmt.Sprintf("SELECT id, label FROM items WHERE label = 'l1' ORDER BY L2Distance(embedding, %s) LIMIT 10", vecLit(q)),
			"SELECT id, label FROM items WHERE label = 'l2' ORDER BY id LIMIT 20",
			"SELECT label FROM items ORDER BY id DESC LIMIT 15",
		)
		for _, query := range queries {
			want, err := single.Query(ctx, query)
			if err != nil {
				t.Fatalf("shards=%d single-node %q: %v", shards, query, err)
			}
			got, err := cl.cli.Query(ctx, query)
			if err != nil {
				t.Fatalf("shards=%d coordinator %q: %v", shards, query, err)
			}
			wb, gb := marshalResult(t, want), marshalResult(t, got)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("shards=%d %q differs:\n want %s\n got  %s", shards, query, wb, gb)
			}
			if got.Partial {
				t.Fatalf("shards=%d %q: unexpected partial result", shards, query)
			}
		}
	}
}

// TestInsertPlacementAndDelete checks DML routing: rows land on ring
// owners (every shard gets some of a large batch, none gets all),
// reads see the union, and DELETE finds the rows INSERT placed.
func TestInsertPlacementAndDelete(t *testing.T) {
	rows := genRows(90)
	cl := startCluster(t, 3, 1)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))
	ctx := context.Background()

	total := 0
	for i, e := range cl.engines {
		tab := e.Table("items")
		if tab == nil {
			t.Fatalf("shard %d missing table (DDL broadcast failed)", i)
		}
		n := tab.Rows() + tab.MemRows()
		if n == 0 {
			t.Fatalf("shard %d received no rows — placement is not spreading", i)
		}
		if n == len(rows) {
			t.Fatalf("shard %d received every row — placement is not splitting", i)
		}
		total += n
	}
	if total != len(rows) {
		t.Fatalf("shards hold %d rows total, want %d (replicas=1)", total, len(rows))
	}

	res, err := cl.cli.Query(ctx, "SELECT id FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("SELECT sees %d rows, want %d", len(res.Rows), len(rows))
	}

	cl.mustExec(t, "DELETE FROM items WHERE id IN (3, 17, 41, 88)")
	res, err = cl.cli.Query(ctx, "SELECT id FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(rows)-4 {
		t.Fatalf("after DELETE: %d rows, want %d", len(res.Rows), len(rows)-4)
	}
	for _, r := range res.Rows {
		id, _ := r[0].(json.Number)
		switch id.String() {
		case "3", "17", "41", "88":
			t.Fatalf("deleted key %s still visible", id)
		}
	}
}

// TestReplicatedPlacementDedup checks replicas=2 placement: every row
// is stored twice across the cluster, and the merge folds the copies
// back to one (identical wire text) so reads look single-copy.
func TestReplicatedPlacementDedup(t *testing.T) {
	rows := genRows(60)
	cl := startCluster(t, 3, 2)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))

	total := 0
	for _, e := range cl.engines {
		tab := e.Table("items")
		total += tab.Rows() + tab.MemRows()
	}
	if total != 2*len(rows) {
		t.Fatalf("shards hold %d rows total, want %d (replicas=2)", total, 2*len(rows))
	}
	res, err := cl.cli.Query(context.Background(), "SELECT id, label FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("SELECT sees %d rows, want %d deduped", len(res.Rows), len(rows))
	}
	res, err = cl.cli.Query(context.Background(), annQuery(10))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		key, _ := json.Marshal(r)
		if seen[string(key)] {
			t.Fatalf("replica duplicate in top-k: %s", key)
		}
		seen[string(key)] = true
	}
}

// TestKillShardZeroFailedQueries is the chaos contract: with
// replicas=2 on 3 shards, killing one shard (abrupt close, the kill -9
// model) loses zero queries AND zero rows — every result stays
// complete and byte-identical to the pre-kill result, unmarked
// partial, because every key still has a live owner.
func TestKillShardZeroFailedQueries(t *testing.T) {
	rows := genRows(120)
	cl := startCluster(t, 3, 2)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))
	ctx := context.Background()

	query := annQuery(10)
	want, err := cl.cli.Query(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	wb := marshalResult(t, want)

	cl.shardSrvs[1].Kill()

	for i := 0; i < 40; i++ {
		got, err := cl.cli.Query(ctx, query)
		if err != nil {
			t.Fatalf("query %d after shard kill failed: %v", i, err)
		}
		if got.Partial {
			t.Fatalf("query %d marked partial; 1 dead shard < replicas=2 must stay complete", i)
		}
		if gb := marshalResult(t, got); !bytes.Equal(wb, gb) {
			t.Fatalf("query %d after shard kill differs:\n want %s\n got  %s", i, wb, gb)
		}
	}
}

// TestPartialResultPolicy: with replicas=1, losing a shard loses
// coverage. Default is fail-closed (502 UNAVAILABLE → client
// ErrUnavailable); SET allow_partial = on opts the session into
// partial results, which arrive marked Partial with the surviving
// shards' rows.
func TestPartialResultPolicy(t *testing.T) {
	rows := genRows(90)
	cl := startCluster(t, 3, 1)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))
	ctx := context.Background()

	full, err := cl.cli.Query(ctx, "SELECT id FROM items")
	if err != nil {
		t.Fatal(err)
	}
	cl.shardSrvs[2].Kill()

	_, err = cl.cli.Query(ctx, "SELECT id FROM items")
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable fail-closed, got %v", err)
	}

	if err := cl.cli.Set(ctx, "allow_partial", "on"); err != nil {
		t.Fatal(err)
	}
	res, err := cl.cli.Query(ctx, "SELECT id FROM items")
	if err != nil {
		t.Fatalf("allow_partial query failed: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not marked Partial with a dead shard and replicas=1")
	}
	if len(res.Rows) == 0 || len(res.Rows) >= len(full.Rows) {
		t.Fatalf("partial result has %d rows, want strict non-empty subset of %d", len(res.Rows), len(full.Rows))
	}
}

// TestOneTraceSpansCluster: a caller-chosen trace ID surfaces on the
// coordinator's response AND on the trace records of the coordinator
// and every shard leg (all engines in this test share the process
// trace ring, so the fan-out is visible in one place — exactly what a
// cluster-wide trace search does with real processes).
func TestOneTraceSpansCluster(t *testing.T) {
	rows := genRows(60)
	cl := startCluster(t, 2, 1)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))
	ctx := context.Background()

	const traceID = "00c0ffee00c0ffee"
	res, err := cl.cli.Query(ctx, annQuery(5), client.WithTraceID(traceID))
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != traceID {
		t.Fatalf("response trace ID %q, want %q", res.TraceID, traceID)
	}
	records := 0
	for _, r := range obs.Traces().Snapshot() {
		if r.TraceID == traceID {
			records++
		}
	}
	// 1 coordinator record + one per shard engine (TraceSample=1
	// everywhere). The select fans out to both shards.
	if records < 3 {
		t.Fatalf("found %d trace records for %s, want >= 3 (coordinator + 2 shard legs)", records, traceID)
	}
}

// TestCoordinatorInfo checks the /v1/info identity of the coordinator
// role and the single-shard forward of catalog statements.
func TestCoordinatorInfo(t *testing.T) {
	cl := startCluster(t, 3, 2)
	cl.mustExec(t, createStmt())

	info := cl.co.Info()
	if info.Role != "coordinator" || len(info.Shards) != 3 || info.Replicas != 2 {
		t.Fatalf("Info = %+v", info)
	}
	res, err := cl.cli.Query(context.Background(), "SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW TABLES rows = %v", res.Rows)
	}
	res, err = cl.cli.Query(context.Background(), "DESCRIBE items")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("DESCRIBE items returned nothing")
	}
}

// TestBreakerSkipsDeadShard: after enough failures the dead shard's
// breaker opens and legs are skipped outright (no per-query dial
// stall); when the shard returns, the half-open probe closes the
// breaker and the shard serves again.
func TestBreakerSkipsDeadShard(t *testing.T) {
	rows := genRows(60)
	cl := startCluster(t, 3, 2)
	cl.mustExec(t, createStmt())
	cl.mustExec(t, insertStmt(rows))
	ctx := context.Background()

	cl.shardSrvs[0].Kill()
	query := annQuery(5)
	for i := 0; i < 6; i++ {
		if _, err := cl.cli.Query(ctx, query); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	var dead *shard
	for _, s := range cl.co.shards {
		if s.name == "http://"+cl.shardSrvs[0].Addr() {
			dead = s
		}
	}
	if dead == nil {
		t.Fatal("dead shard not found in coordinator")
	}
	if !dead.brk.open() {
		t.Fatal("breaker still closed after repeated failures to a dead shard")
	}
	// With the breaker open, queries keep succeeding and stay fast.
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := cl.cli.Query(ctx, query); err != nil {
			t.Fatalf("query with open breaker: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("5 queries with open breaker took %v — breaker is not skipping the dead shard", elapsed)
	}
}

// TestUnknownTablePropagates: a live cluster rejecting a statement
// must answer with the shard's own taxonomy error, not UNAVAILABLE.
func TestUnknownTablePropagates(t *testing.T) {
	cl := startCluster(t, 2, 1)
	_, err := cl.cli.Query(context.Background(), "SELECT id FROM nope")
	if !errors.Is(err, client.ErrUnknownTable) {
		t.Fatalf("want ErrUnknownTable through the coordinator, got %v", err)
	}
	_, err = cl.cli.Query(context.Background(), "SELEKT broken")
	if !errors.Is(err, client.ErrPlan) {
		t.Fatalf("want ErrPlan for parse failure, got %v", err)
	}
}
