// The BlobStore contract suite lives in an external test package so it
// can hold the blobtier wrappers (which import storage) to the same
// semantics as the base stores.
package storage_test

import (
	"errors"
	"testing"

	"blendhouse/internal/blobtier"
	"blendhouse/internal/storage"
)

// contractStores builds one of every BlobStore implementation,
// including the fault-tolerance and storage-proxy wrappers configured
// to be transparent, so the whole family is held to identical
// semantics.
func contractStores(t *testing.T) map[string]storage.BlobStore {
	t.Helper()
	fs, err := storage.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := blobtier.NewTiered(storage.NewMemStore(), blobtier.Config{MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tieredDisk, err := blobtier.NewTiered(storage.NewMemStore(), blobtier.Config{
		// A 16-byte memory budget forces every blob through the
		// spill/promote path, so the contract holds on the disk tier too.
		MemBytes: 16, DiskBytes: 1 << 20, DiskDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := blobtier.NewEncrypting(storage.NewMemStore(), blobtier.KeyFromString("contract"))
	if err != nil {
		t.Fatal(err)
	}
	// The exact shape of an encrypted backup destination: ciphertext on
	// the local filesystem.
	encFS, err := storage.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backupDest, err := blobtier.NewEncrypting(encFS, blobtier.KeyFromString("backup"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]storage.BlobStore{
		"mem":         storage.NewMemStore(),
		"fs":          fs,
		"remote":      storage.NewRemoteStore(storage.NewMemStore(), storage.RemoteConfig{}),
		"retry":       storage.NewRetryStore(storage.NewMemStore(), storage.RetryConfig{Seed: 1}),
		"fault":       storage.NewFaultStore(storage.NewMemStore(), storage.FaultConfig{Seed: 1}),
		"tiered":      tiered,
		"tiered-disk": tieredDisk,
		"encrypting":  enc,
		"backup-dest": backupDest,
	}
}

// TestBlobStoreContract pins the shared semantics every implementation
// must agree on — most importantly that negative range arguments are a
// typed validation error, never a panic (FSStore used to panic on
// negative length via make([]byte, end-off)).
func TestBlobStoreContract(t *testing.T) {
	for name, s := range contractStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("c/key", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}

			// Negative off / length: ErrInvalidRange, no panic.
			for _, bad := range [][2]int64{{-1, 4}, {2, -1}, {-3, -3}} {
				_, err := s.GetRange("c/key", bad[0], bad[1])
				if !errors.Is(err, storage.ErrInvalidRange) {
					t.Errorf("GetRange(%d,%d) = %v, want ErrInvalidRange", bad[0], bad[1], err)
				}
			}

			// In-bounds range.
			got, err := s.GetRange("c/key", 2, 4)
			if err != nil || string(got) != "2345" {
				t.Errorf("GetRange(2,4) = %q, %v", got, err)
			}
			// Past-the-end clamps to the available suffix.
			got, err = s.GetRange("c/key", 8, 100)
			if err != nil || string(got) != "89" {
				t.Errorf("GetRange(8,100) = %q, %v", got, err)
			}
			// Fully past the end: empty, no error.
			got, err = s.GetRange("c/key", 100, 4)
			if err != nil || len(got) != 0 {
				t.Errorf("GetRange(100,4) = %q, %v", got, err)
			}
			// Zero length: empty, no error.
			got, err = s.GetRange("c/key", 0, 0)
			if err != nil || len(got) != 0 {
				t.Errorf("GetRange(0,0) = %q, %v", got, err)
			}

			// Missing keys: typed not-found from every read op.
			if _, err := s.Get("c/absent"); !storage.IsNotFound(err) {
				t.Errorf("Get(absent) = %v, want ErrNotFound", err)
			}
			if _, err := s.Size("c/absent"); !storage.IsNotFound(err) {
				t.Errorf("Size(absent) = %v, want ErrNotFound", err)
			}
			if _, err := s.GetRange("c/absent", 0, 1); !storage.IsNotFound(err) {
				t.Errorf("GetRange(absent) = %v, want ErrNotFound", err)
			}
			// ...and even an absent key rejects invalid ranges the same
			// way (validation precedes existence).
			if _, err := s.GetRange("c/absent", -1, 1); err == nil {
				t.Error("GetRange(absent,-1,1) should fail")
			}

			// Delete of a missing key is not an error.
			if err := s.Delete("c/absent"); err != nil {
				t.Errorf("Delete(absent) = %v", err)
			}

			// Size and List agree with Put.
			n, err := s.Size("c/key")
			if err != nil || n != 10 {
				t.Errorf("Size = %d, %v", n, err)
			}
			keys, err := s.List("c/")
			if err != nil || len(keys) != 1 || keys[0] != "c/key" {
				t.Errorf("List = %v, %v", keys, err)
			}

			// Overwrite then delete: reads reflect the latest write (a
			// caching wrapper must invalidate, not serve stale bytes).
			if err := s.Put("c/key", []byte("abc")); err != nil {
				t.Fatal(err)
			}
			if got, err := s.Get("c/key"); err != nil || string(got) != "abc" {
				t.Errorf("Get after overwrite = %q, %v", got, err)
			}
			if n, err := s.Size("c/key"); err != nil || n != 3 {
				t.Errorf("Size after overwrite = %d, %v", n, err)
			}
			if err := s.Delete("c/key"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("c/key"); !storage.IsNotFound(err) {
				t.Errorf("Get after delete = %v, want ErrNotFound", err)
			}
		})
	}
}
