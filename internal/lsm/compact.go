package lsm

import (
	"fmt"
	"sort"
	"time"

	"blendhouse/internal/bitset"
	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
)

// Compaction metrics (SHOW METRICS / the -debug-addr endpoint).
var (
	mCompactRuns     = obs.Default().Counter("bh.lsm.compaction.runs")
	mCompactSegments = obs.Default().Counter("bh.lsm.compaction.segments_merged")
	mCompactRows     = obs.Default().Counter("bh.lsm.compaction.rows_written")
	mCompactDur      = obs.Default().Histogram("bh.lsm.compaction.duration")
)

// Background compaction (paper §III-B "Vector index compaction"):
// small segments within the same (partition, bucket) group are merged
// into one larger segment; deleted rows are dropped during the merge,
// and the merged segment gets a freshly built vector index — index
// consolidation rides the existing compaction mechanism for free.

// CompactionPolicy controls when a group compacts.
type CompactionPolicy struct {
	// MinSegments is the group size that triggers a merge (default 4).
	MinSegments int
	// MaxMergeRows caps the merged segment's size (default 1<<20).
	MaxMergeRows int
}

func (p CompactionPolicy) withDefaults() CompactionPolicy {
	if p.MinSegments <= 0 {
		p.MinSegments = 4
	}
	if p.MaxMergeRows <= 0 {
		p.MaxMergeRows = 1 << 20
	}
	return p
}

// CompactOnce merges the most fragmented (partition, bucket) group if
// it has at least policy.MinSegments segments. It returns the number
// of segments merged (0 when nothing qualified).
func (t *Table) CompactOnce(policy CompactionPolicy) (int, error) {
	policy = policy.withDefaults()
	group, metas := t.pickCompactionGroup(policy)
	if len(metas) < policy.MinSegments {
		return 0, nil
	}
	_ = group
	compactStart := obs.Now()
	// Read the group's live rows into one batch, applying deletes.
	// The MaxMergeRows cap bounds how many segments this round
	// actually merges; segments beyond the cap stay live untouched.
	//
	// Deletes run concurrently with this read, so each segment's bitmap
	// is snapshotted (cloned under t.mu) and the snapshot drives the
	// merge, while rowMaps records where every carried row landed in the
	// merged batch. At swap time, under dmlMu, the live bitmaps are
	// diffed against the snapshots and any row deleted after its
	// snapshot was taken is re-marked in the new segment's bitmap —
	// without this, a DELETE landing between the bitmap read and the
	// catalog swap was silently dropped when t.deletes[m.Name] was
	// discarded.
	merged := storage.NewRowBatch(t.opts.Schema)
	maxLevel := 0
	var mergedMetas []*storage.SegmentMeta
	var snapshots []*bitset.Bitset
	var rowMaps [][]int // old row -> merged row, -1 = dropped as deleted
	for _, m := range metas {
		if merged.Len() >= policy.MaxMergeRows {
			break
		}
		mergedMetas = append(mergedMetas, m)
		if m.Level > maxLevel {
			maxLevel = m.Level
		}
		bm, err := t.DeleteBitmap(m.Name)
		if err != nil {
			return 0, err
		}
		var snap *bitset.Bitset
		if bm != nil {
			t.mu.RLock()
			snap = bm.Clone() // markDeleted mutates the live bitmap under t.mu
			t.mu.RUnlock()
		}
		snapshots = append(snapshots, snap)
		rd := &storage.SegmentReader{Store: t.store, Meta: m, Schema: t.opts.Schema}
		cols := make([]*storage.ColumnData, len(t.opts.Schema.Columns))
		for ci, def := range t.opts.Schema.Columns {
			col, err := rd.ReadColumn(def.Name)
			if err != nil {
				return 0, fmt.Errorf("lsm: compaction reading %s/%s: %w", m.Name, def.Name, err)
			}
			cols[ci] = col
		}
		src := &storage.RowBatch{Schema: t.opts.Schema, Cols: cols}
		rowMap := make([]int, m.Rows)
		for r := 0; r < m.Rows; r++ {
			if snap != nil && snap.Test(r) {
				rowMap[r] = -1
				continue
			}
			rowMap[r] = merged.Len()
			merged.AppendRow(src, r)
		}
		rowMaps = append(rowMaps, rowMap)
	}
	if len(mergedMetas) < 2 {
		return 0, nil // nothing meaningful to merge under the cap
	}
	// Write the merged segment (fresh index built inside).
	newMeta, err := t.writeSegment(merged, mergedMetas[0].Partition, mergedMetas[0].Bucket, maxLevel+1)
	if err != nil {
		return 0, fmt.Errorf("lsm: writing compacted segment: %w", err)
	}
	// From here until the catalog swap no new delete may apply: dmlMu
	// excludes deleteFromSegments, so the late-delete diff below is
	// complete and the swap is atomic with respect to DML.
	t.dmlMu.Lock()
	var newBM *bitset.Bitset
	for i, m := range mergedMetas {
		live, berr := t.DeleteBitmap(m.Name)
		if berr != nil {
			t.dmlMu.Unlock()
			return 0, berr
		}
		if live == nil {
			continue
		}
		snap, rowMap := snapshots[i], rowMaps[i]
		t.mu.RLock()
		for r := 0; r < m.Rows; r++ {
			if live.Test(r) && rowMap[r] >= 0 && (snap == nil || !snap.Test(r)) {
				if newBM == nil {
					newBM = bitset.New(merged.Len())
				}
				newBM.Set(rowMap[r])
			}
		}
		t.mu.RUnlock()
	}
	if newBM != nil {
		// Persist the carried deletes before the swap: once the manifest
		// stops referencing the old segments, their bitmaps are the only
		// durable record of these rows' deletion. A failure here aborts
		// the compaction cleanly (the unreferenced merged segment is a
		// harmless orphan).
		blob, merr := newBM.MarshalBinary()
		if merr == nil {
			merr = t.store.Put(storage.DeleteBitmapKey(t.opts.Name, newMeta.Name), blob)
		}
		if merr != nil {
			t.dmlMu.Unlock()
			return 0, fmt.Errorf("lsm: persisting carried delete bitmap of %s: %w", newMeta.Name, merr)
		}
	}
	// Swap catalog: register the new segment, retire the merged ones.
	t.mu.Lock()
	t.segments[newMeta.Name] = newMeta
	if newBM != nil {
		t.deletes[newMeta.Name] = newBM
	}
	for _, m := range mergedMetas {
		delete(t.segments, m.Name)
		delete(t.deletes, m.Name)
	}
	t.mu.Unlock()
	t.dmlMu.Unlock()
	if err := t.saveManifest(); err != nil {
		return 0, err
	}
	// Best-effort cleanup of retired blobs; orphans are harmless
	// because the manifest no longer references them.
	for _, m := range mergedMetas {
		prefix := "tables/" + t.opts.Name + "/segments/" + m.Name + "/"
		if keys, lerr := t.store.List(prefix); lerr == nil {
			for _, k := range keys {
				_ = t.store.Delete(k)
			}
		}
	}
	mCompactRuns.Inc()
	mCompactSegments.Add(int64(len(mergedMetas)))
	mCompactRows.Add(int64(merged.Len()))
	dur := time.Since(compactStart)
	mCompactDur.Observe(dur)
	lsmLog.Info("compaction", "table", t.opts.Name, "segments_merged", len(mergedMetas),
		"rows_written", merged.Len(), "duration_ms", float64(dur.Microseconds())/1000)
	return len(mergedMetas), nil
}

// pickCompactionGroup returns the (partition,bucket) group with the
// most segments, restricted to segments below the merged-size cap.
func (t *Table) pickCompactionGroup(policy CompactionPolicy) (string, []*storage.SegmentMeta) {
	t.mu.RLock()
	groups := map[string][]*storage.SegmentMeta{}
	for _, m := range t.segments {
		if m.Rows >= policy.MaxMergeRows {
			continue
		}
		key := fmt.Sprintf("%s#%d", m.Partition, m.Bucket)
		groups[key] = append(groups[key], m)
	}
	t.mu.RUnlock()
	bestKey, bestLen := "", 0
	for k, v := range groups {
		if len(v) > bestLen || (len(v) == bestLen && k < bestKey) {
			bestKey, bestLen = k, len(v)
		}
	}
	metas := groups[bestKey]
	// Merge oldest (lowest id) first for deterministic behaviour.
	sort.Slice(metas, func(i, j int) bool { return metas[i].Name < metas[j].Name })
	return bestKey, metas
}

// CompactAll repeatedly compacts until no group qualifies, returning
// the total number of segments merged. Used by tests and by the
// dedicated compaction VW.
func (t *Table) CompactAll(policy CompactionPolicy) (int, error) {
	total := 0
	for {
		n, err := t.CompactOnce(policy)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// StartCompaction launches a background loop compacting every
// interval until stop is closed — the dedicated compaction virtual
// warehouse of the disaggregated deployment. Errors are delivered to
// onErr (may be nil).
func (t *Table) StartCompaction(policy CompactionPolicy, interval time.Duration, stop <-chan struct{}, onErr func(error)) {
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, err := t.CompactOnce(policy); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
}
