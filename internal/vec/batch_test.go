package vec

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked kernels must be BITWISE identical to the scalar kernels:
// query results flow straight out of them, and the "blocked kernels
// change no result" contract is what lets every scan path adopt them.
// Dims cover non-multiple-of-4/8 tails and the empty vector; row
// counts cover the odd-tail path of the pair microkernels.

var kernelDims = []int{0, 1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 17, 31, 32, 33, 64, 96, 100, 129}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*4 - 2
	}
	return v
}

func TestBatchKernelsBitwiseEqualScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range kernelDims {
		for _, rows := range []int{0, 1, 2, 3, 5, 8, 9, 17} {
			q := randVec(rng, dim)
			data := randVec(rng, rows*dim)
			got := make([]float32, rows)
			for _, m := range []Metric{L2, InnerProduct, Cosine} {
				DistancesTo(m, q, data, dim, got)
				for r := 0; r < rows; r++ {
					want := Distance(m, q, data[r*dim:(r+1)*dim])
					if math.Float32bits(got[r]) != math.Float32bits(want) {
						t.Fatalf("%v dim=%d rows=%d row=%d: batch %v != scalar %v", m, dim, rows, r, got[r], want)
					}
				}
			}
		}
	}
}

func TestBatchKernelsDirectEntryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim, rows := 33, 9
	q := randVec(rng, dim)
	data := randVec(rng, rows*dim)
	l2 := make([]float32, rows)
	dot := make([]float32, rows)
	cos := make([]float32, rows)
	L2SquaredBatch(q, data, dim, l2)
	DotBatch(q, data, dim, dot)
	CosineBatch(q, data, dim, cos)
	for r := 0; r < rows; r++ {
		row := data[r*dim : (r+1)*dim]
		if math.Float32bits(l2[r]) != math.Float32bits(L2Squared(q, row)) {
			t.Fatalf("L2SquaredBatch row %d mismatch", r)
		}
		if math.Float32bits(dot[r]) != math.Float32bits(Dot(q, row)) {
			t.Fatalf("DotBatch row %d mismatch", r)
		}
		if math.Float32bits(cos[r]) != math.Float32bits(CosineDistance(q, row)) {
			t.Fatalf("CosineBatch row %d mismatch", r)
		}
	}
}

// Threshold kernels: with an infinite threshold they are bitwise equal
// to the plain kernels; with a finite threshold every non-abandoned
// entry is exact and every abandoned entry is strictly above the
// threshold (so a top-k heap holding worst <= thr must reject it).
func TestThresholdKernelsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, dim := range kernelDims {
		for _, rows := range []int{0, 1, 2, 5, 16, 33} {
			q := randVec(rng, dim)
			data := randVec(rng, rows*dim)
			exact := make([]float32, rows)
			L2SquaredBatch(q, data, dim, exact)

			inf := make([]float32, rows)
			L2SquaredBatchThreshold(q, data, dim, inf, math.MaxFloat32)
			for r := range inf {
				if math.Float32bits(inf[r]) != math.Float32bits(exact[r]) {
					t.Fatalf("dim=%d rows=%d row=%d: thr=inf %v != exact %v", dim, rows, r, inf[r], exact[r])
				}
			}

			// Pick a threshold in the middle of the observed range.
			var thr float32
			for _, d := range exact {
				thr += d
			}
			if rows > 0 {
				thr /= float32(rows)
			}
			got := make([]float32, rows)
			L2SquaredBatchThreshold(q, data, dim, got, thr)
			for r := range got {
				if got[r] == exact[r] {
					continue // full computation: must be exact (bitwise checked above)
				}
				if !(got[r] > thr) {
					t.Fatalf("dim=%d row=%d: abandoned value %v not > thr %v", dim, r, got[r], thr)
				}
				if exact[r] <= thr {
					t.Fatalf("dim=%d row=%d: abandoned a row with exact %v <= thr %v", dim, r, exact[r], thr)
				}
			}

			for r := 0; r < rows; r++ {
				row := data[r*dim : (r+1)*dim]
				d := L2SquaredThreshold(q, row, thr)
				if d != exact[r] && !(d > thr && exact[r] > thr) {
					t.Fatalf("scalar threshold dim=%d row=%d: got %v exact %v thr %v", dim, r, d, exact[r], thr)
				}
				full := L2SquaredThreshold(q, row, math.MaxFloat32)
				if math.Float32bits(full) != math.Float32bits(exact[r]) {
					t.Fatalf("scalar threshold thr=inf mismatch: %v != %v", full, exact[r])
				}
			}
		}
	}
}

// Zero vectors through the cosine batch kernel must keep the scalar
// kernel's "maximally distant" convention, not produce NaN.
func TestCosineBatchZeroVectors(t *testing.T) {
	dim := 8
	q := make([]float32, dim) // zero query
	data := make([]float32, 3*dim)
	for i := 0; i < dim; i++ {
		data[i] = 1 // row 0 non-zero; rows 1,2 zero
	}
	out := make([]float32, 3)
	CosineBatch(q, data, dim, out)
	for r, d := range out {
		if d != 1 {
			t.Fatalf("row %d: cosine distance to/from zero vector = %v, want 1", r, d)
		}
	}
}

func benchData(b *testing.B, rows, dim int) ([]float32, []float32) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randVec(rng, dim), randVec(rng, rows*dim)
}

func BenchmarkL2PerRow(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 256; r++ {
			out[r] = L2Squared(q, data[r*96:(r+1)*96])
		}
	}
	_ = out
}

func BenchmarkL2Batch(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredBatch(q, data, 96, out)
	}
	_ = out
}

func BenchmarkL2BatchThreshold(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	exact := make([]float32, 256)
	L2SquaredBatch(q, data, 96, exact)
	var thr float32
	for _, d := range exact {
		thr += d
	}
	thr /= 256 * 4 // tight threshold: most rows abandon
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2SquaredBatchThreshold(q, data, 96, out, thr)
	}
	_ = out
}

func BenchmarkDotBatch(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatch(q, data, 96, out)
	}
	_ = out
}

func BenchmarkCosineBatch(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CosineBatch(q, data, 96, out)
	}
	_ = out
}

func BenchmarkCosinePerRow(b *testing.B) {
	q, data := benchData(b, 256, 96)
	out := make([]float32, 256)
	b.SetBytes(int64(256 * 96 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 256; r++ {
			out[r] = CosineDistance(q, data[r*96:(r+1)*96])
		}
	}
	_ = out
}
