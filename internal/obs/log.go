package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// Structured logging for every layer of the stack. Components obtain a
// logger once via Logger("wal"), Logger("server"), … and log through
// it; the backing slog.Handler (level, text/json, destination) is held
// behind an atomic pointer so ConfigureLogging — driven by the
// -log-level / -log-format flags — can swap it process-wide at any
// time without the components re-fetching anything.
//
// Handle injects the query's trace ID from the context
// (obs.WithTraceID) into every record as trace_id, which is what makes
// grep-by-trace-ID work across the server access log, WAL, compaction,
// and storage retry events. Logs default to text on stderr at WARN so
// tests and the shell stay quiet unless something is wrong.

var logHandler atomic.Pointer[slog.Handler]

func init() {
	h := slog.Handler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	logHandler.Store(&h)
}

// ParseLogLevel maps a -log-level flag value onto a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// ConfigureLogging swaps the process-wide log sink. format is "text" or
// "json"; w defaults to stderr when nil. Safe to call concurrently with
// logging.
func ConfigureLogging(level slog.Level, format string, w io.Writer) error {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	logHandler.Store(&h)
	return nil
}

// Logger returns a component logger whose records carry
// component=<name>, flow through the current process-wide handler, and
// gain trace_id from the context automatically.
func Logger(component string) *slog.Logger {
	return slog.New(&ctxHandler{attrs: []slog.Attr{slog.String("component", component)}})
}

// ctxHandler defers to the current process-wide handler at Handle time
// (so ConfigureLogging applies retroactively to already-built loggers)
// and injects the context's trace ID.
type ctxHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (h *ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return (*logHandler.Load()).Enabled(ctx, level)
}

func (h *ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("trace_id", id))
	}
	cur := *logHandler.Load()
	for _, a := range h.attrs {
		cur = cur.WithAttrs([]slog.Attr{a})
	}
	for _, g := range h.groups {
		cur = cur.WithGroup(g)
	}
	return cur.Handle(ctx, r)
}

func (h *ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	n := &ctxHandler{groups: h.groups}
	n.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return n
}

func (h *ctxHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	n := &ctxHandler{attrs: h.attrs}
	n.groups = append(append([]string(nil), h.groups...), name)
	return n
}
