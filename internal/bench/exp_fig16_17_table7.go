package bench

import (
	"context"
	"fmt"
	"time"

	"blendhouse/internal/baseline/milvuslike"
	"blendhouse/internal/baseline/pgvectorlike"
	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/cache"
	"blendhouse/internal/exec"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/plan"
	"blendhouse/internal/sql"
	"blendhouse/internal/storage"
)

func init() {
	register("fig16", "Hybrid QPS under random / scalar / semantic / combined partitioning (LAION-like)", runFig16)
	register("fig17", "Workload-aware optimization breakdown: baseline vs READ_Opt vs READ_Opt+Query_Opt", runFig17)
	register("table7", "Production workload: latency & recall with and without partitioning", runTable7)
}

// laionTable builds an LSM table over the LAION-like dataset with the
// requested partitioning strategy. simbucket is the similarity
// quartile, giving the scalar partitioner tight per-segment similarity
// ranges. Segment sizing keeps the total segment count comparable
// across strategies (~16) so pruning effectiveness — not per-segment
// overhead — is what the experiment measures.
func laionTable(cfg Config, ds *dataset.Dataset, name string, scalarPart bool, buckets int, store storage.BlobStore) (*lsm.Table, error) {
	schema := &storage.Schema{Columns: []storage.ColumnDef{
		{Name: "id", Type: storage.Int64Type},
		{Name: "simbucket", Type: storage.Int64Type},
		{Name: "similarity", Type: storage.Float64Type},
		{Name: "caption", Type: storage.StringType},
		{Name: "embedding", Type: storage.VectorType, Dim: ds.Spec.Dim},
	}}
	n := ds.Vectors.Rows()
	// Same segment-size cap for every strategy, so each variant ends
	// with ~16 segments and pruning power — not per-segment overhead —
	// is what the experiment compares. (The combined strategy has 16
	// (partition, bucket) groups, which exactly matches the cap.)
	segRows := n/16 + 1
	opts := lsm.Options{
		Name: name, Schema: schema,
		IndexColumn: "embedding", IndexType: index.HNSW,
		IndexParams: index.BuildParams{M: 12, EfConstruction: 120, Seed: cfg.Seed},
		SegmentRows: segRows, PipelinedBuild: true, Seed: cfg.Seed,
		ClusterBuckets: buckets,
	}
	if scalarPart {
		opts.PartitionBy = []string{"simbucket"}
	}
	tab, err := lsm.Create(store, opts)
	if err != nil {
		return nil, err
	}
	batch := storage.NewRowBatch(schema)
	for i := 0; i < n; i++ {
		batch.Col("id").Ints = append(batch.Col("id").Ints, int64(i))
		sb := int64(ds.Floats[i] * 4)
		if sb > 3 {
			sb = 3
		}
		batch.Col("simbucket").Ints = append(batch.Col("simbucket").Ints, sb)
		batch.Col("similarity").Floats = append(batch.Col("similarity").Floats, ds.Floats[i])
		batch.Col("caption").Strs = append(batch.Col("caption").Strs, ds.Captions[i])
	}
	batch.Col("embedding").Vecs = append(batch.Col("embedding").Vecs, ds.Vectors.Data...)
	if err := tab.Insert(batch); err != nil {
		return nil, err
	}
	return tab, nil
}

// laionQuery builds the paper's LAION workload SELECT: vector search
// with a similarity range predicate and a caption regex.
func laionQuery(ds *dataset.Dataset, qi int, threshold float64, withRegex bool) *sql.Select {
	sel := &sql.Select{
		Table:   "t",
		Columns: []sql.SelectItem{{Name: "id"}},
		Where: []sql.Predicate{
			{Column: "similarity", Op: sql.OpBetween, Value: threshold, Value2: 1.0},
		},
		OrderBy: &sql.OrderBy{Distance: &sql.DistanceExpr{
			Func: "L2Distance", Column: "embedding", Query: ds.Queries.Row(qi),
		}},
		Limit:    10,
		Settings: map[string]int{"ef_search": 64},
	}
	if withRegex {
		sel.Where = append(sel.Where, sql.Predicate{Column: "caption", Op: sql.OpRegexp, Value: "^[a-z]"})
	}
	return sel
}

// runFig16 reproduces Figure 16: the LAION multi-predicate workload
// under four data-management strategies. Scalar partitioning prunes
// by similarity range; semantic partitioning prunes by centroid
// distance; the combination prunes on both axes.
func runFig16(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig16", Title: "QPS per partitioning strategy (LAION-like hybrid workload)",
		Headers: []string{"strategy", "segments (total)", "QPS"}}
	rep.Note("paper Fig 16: scalar and semantic partitioning each beat random; their combination is best")
	ds := laionLike(cfg)
	variants := []struct {
		label   string
		scalar  bool
		buckets int
	}{
		{"random (none)", false, 0},
		{"scalar", true, 0},
		{"semantic", false, 4},
		{"scalar+semantic", true, 4},
	}
	// Per-query similarity thresholds in [0.3, 0.9] — "a random range
	// between a threshold and 1.0", per the paper's LAION workload.
	thresholdOf := func(qi int) float64 { return 0.3 + 0.6*float64(qi%10)/10 }
	for _, v := range variants {
		tab, err := laionTable(cfg, ds, "t", v.scalar, v.buckets, storage.NewMemStore())
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if v.buckets > 0 {
			frac = 0.3
		}
		ccCfg := cache.DefaultColumnCacheConfig()
		ex := &exec.Executor{Table: tab, ColCache: cache.NewColumnCache(ccCfg), SemanticFraction: frac, MinSegments: 1}
		planner := plan.NewPlanner(plan.PlannerConfig{})
		// Warm index loads before measuring.
		if ph, err := planner.Plan(laionQuery(ds, 0, 0.3, false), tab); err == nil {
			if _, err := ex.Run(context.Background(), ph); err != nil {
				return nil, err
			}
		}
		timing, err := MeasureSerial(cfg.Queries*2, func(qi int) error {
			qq := qi % ds.Queries.Rows()
			ph, err := planner.Plan(laionQuery(ds, qq, thresholdOf(qq), false), tab)
			if err != nil {
				return err
			}
			_, err = ex.Run(context.Background(), ph)
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.label, fmt.Sprint(tab.SegmentCount()), fmtQPS(timing.QPS))
	}
	return rep, nil
}

// runFig17 reproduces Figure 17: the hybrid workload over
// latency-modeled remote storage with optimizations toggled on
// incrementally — baseline (no column cache, no plan cache/short
// circuit), READ_Opt (adaptive column cache + block-granular reads),
// READ_Opt+Query_Opt (plus plan cache and short-circuit planning).
func runFig17(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig17", Title: "Workload-aware optimization breakdown",
		Headers: []string{"variant", "QPS", "improvement"}}
	rep.Note("paper Fig 17: READ_Opt +124%%, READ_Opt+Query_Opt +206%% vs baseline; shape check = monotone improvement")
	ds := laionLike(cfg)
	store := remoteStore()
	tab, err := laionTable(cfg, ds, "t", false, 0, store)
	if err != nil {
		return nil, err
	}
	threshold := 0.3
	variants := []struct {
		label    string
		colCache bool
		planner  plan.PlannerConfig
	}{
		{"baseline", false, plan.PlannerConfig{DisablePlanCache: true, DisableShortCircuit: true}},
		{"READ_Opt", true, plan.PlannerConfig{DisablePlanCache: true, DisableShortCircuit: true}},
		{"READ_Opt+Query_Opt", true, plan.PlannerConfig{}},
	}
	var baseQPS float64
	for i, v := range variants {
		var cc *cache.ColumnCache
		if v.colCache {
			ccCfg := cache.DefaultColumnCacheConfig()
			cc = cache.NewColumnCache(ccCfg)
		}
		ex := &exec.Executor{Table: tab, ColCache: cc}
		planner := plan.NewPlanner(v.planner)
		// Queries project two scalar columns so the result-fetch I/O
		// (the read amplification of §IV-C) is on the measured path.
		mkSel := func(qi int) *sql.Select {
			sel := laionQuery(ds, qi, threshold, false)
			sel.Columns = []sql.SelectItem{{Name: "id"}, {Name: "similarity"}, {Name: "caption"}}
			return sel
		}
		// Warm one query (calibration etc.) before measuring.
		if ph, err := planner.Plan(mkSel(0), tab); err == nil {
			if _, err := ex.Run(context.Background(), ph); err != nil {
				return nil, err
			}
		}
		timing, err := MeasureSerial(cfg.Queries*4, func(qi int) error {
			ph, err := planner.Plan(mkSel(qi%ds.Queries.Rows()), tab)
			if err != nil {
				return err
			}
			_, err = ex.Run(context.Background(), ph)
			return err
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseQPS = timing.QPS
		}
		rep.AddRow(v.label, fmtQPS(timing.QPS), fmt.Sprintf("%+.1f%%", 100*(timing.QPS/baseQPS-1)))
	}
	return rep, nil
}

// runTable7 reproduces Table VII: the production image-search workload
// (multi-predicate filtered top-k) on BlendHouse and Milvus-like, each
// with and without partitioning, plus pgvector-like's recall collapse.
func runTable7(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "table7", Title: "Production workload: search latency and recall",
		Headers: []string{"System", "Recall", "Latency", "Speedup"}}
	rep.Note("paper Table VII: Milvus 1x, Milvus-Partition 2.38x, ByteHouse 2.32x, ByteHouse-Partition 4.21x; pgvector recall <0.35 omitted")
	ds := prodLike(cfg)
	n := ds.Vectors.Rows()
	k := 50
	// The production query: top-k among rows of one category in a
	// timestamp range (~40% of the category's rows).
	catOf := func(i int) string { return ds.Category[i] }
	tsLo := ds.TSMillis[n/4]
	tsHi := ds.TSMillis[3*n/4]
	queryCat := "animal"
	keep := func(i int) bool {
		return catOf(i) == queryCat && ds.TSMillis[i] >= tsLo && ds.TSMillis[i] <= tsHi
	}
	truth := ds.GroundTruth(datasetMetric, k, keep)

	type measured struct {
		recall  float64
		latency time.Duration
	}
	results := map[string]measured{}

	// BlendHouse variants (real engine).
	for _, part := range []bool{false, true} {
		tab, ex, planner, err := prodTable(cfg, ds, part)
		if err != nil {
			return nil, err
		}
		mkSel := func(qi int) *sql.Select {
			return &sql.Select{
				Table:   "t",
				Columns: []sql.SelectItem{{Name: "id"}},
				Where: []sql.Predicate{
					{Column: "category", Op: sql.OpEq, Value: queryCat},
					{Column: "ts", Op: sql.OpBetween, Value: tsLo, Value2: tsHi},
				},
				OrderBy: &sql.OrderBy{Distance: &sql.DistanceExpr{
					Func: "L2Distance", Column: "embedding", Query: ds.Queries.Row(qi),
				}},
				Limit:    k,
				Settings: map[string]int{"ef_search": 128},
			}
		}
		// Warm index and column caches before measuring.
		if ph, err := planner.Plan(mkSel(0), tab); err == nil {
			if _, err := ex.Run(context.Background(), ph); err != nil {
				return nil, err
			}
		}
		got := make([][]int64, ds.Queries.Rows())
		timing, err := MeasureSerial(ds.Queries.Rows(), func(qi int) error {
			ph, err := planner.Plan(mkSel(qi), tab)
			if err != nil {
				return err
			}
			res, err := ex.Run(context.Background(), ph)
			if err != nil {
				return err
			}
			ids := make([]int64, len(res.Rows))
			for i, row := range res.Rows {
				ids[i] = row[0].(int64)
			}
			got[qi] = ids
			return nil
		})
		if err != nil {
			return nil, err
		}
		name := "BlendHouse"
		if part {
			name = "BlendHouse-Partition"
		}
		results[name] = measured{dataset.Recall(truth, got), timing.Mean}
	}

	// Milvus-like: global collection with its native boolean-expression
	// pre-filter. Both predicates are encoded into one attribute
	// (category index in the high digits, timestamp below), so a single
	// range covers category = c AND ts BETWEEN lo AND hi — giving the
	// stand-in Milvus's real filtering power.
	const catBase = int64(1) << 44 // ts values stay far below this
	catIdx := map[string]int64{}
	for i := 0; i < n; i++ {
		if _, ok := catIdx[catOf(i)]; !ok {
			catIdx[catOf(i)] = int64(len(catIdx))
		}
	}
	mAttrs := make([]int64, n)
	for i := range mAttrs {
		mAttrs[i] = catIdx[catOf(i)]*catBase + ds.TSMillis[i]
	}
	qCatIdx := catIdx[queryCat]
	{
		s := milvuslike.New(milvuslike.Config{SegmentRows: 1200, Seed: cfg.Seed, M: 12, EfConstruction: 120}, storage.NewMemStore())
		if err := s.Load(ds.Vectors.Data, ds.Spec.Dim, mAttrs); err != nil {
			return nil, err
		}
		// Warm before measuring.
		if _, err := s.Search(ds.Queries.Row(0), k, qCatIdx*catBase+tsLo, qCatIdx*catBase+tsHi, index.SearchParams{Ef: 256}); err != nil {
			return nil, err
		}
		got := make([][]int64, ds.Queries.Rows())
		timing, err := MeasureSerial(ds.Queries.Rows(), func(qi int) error {
			ids, err := s.Search(ds.Queries.Row(qi), k, qCatIdx*catBase+tsLo, qCatIdx*catBase+tsHi, index.SearchParams{Ef: 256})
			if err != nil {
				return err
			}
			got[qi] = ids
			return nil
		})
		if err != nil {
			return nil, err
		}
		results["Milvus"] = measured{dataset.Recall(truth, got), timing.Mean}
	}
	{
		// Partitioned: one collection per category; queries touch only
		// the matching one.
		perCat := map[string]*milvuslike.Store{}
		catRows := map[string][]int{}
		for i := 0; i < n; i++ {
			catRows[catOf(i)] = append(catRows[catOf(i)], i)
		}
		for cat, rows := range catRows {
			vecs := make([]float32, 0, len(rows)*ds.Spec.Dim)
			attrs := make([]int64, len(rows))
			for j, i := range rows {
				vecs = append(vecs, ds.Vectors.Row(i)...)
				attrs[j] = ds.TSMillis[i]
			}
			_ = cat
			s := milvuslike.New(milvuslike.Config{SegmentRows: 1200, Seed: cfg.Seed, M: 12, EfConstruction: 120}, storage.NewMemStore())
			if err := s.Load(vecs, ds.Spec.Dim, attrs); err != nil {
				return nil, err
			}
			perCat[cat] = s
		}
		rowsOf := catRows[queryCat]
		got := make([][]int64, ds.Queries.Rows())
		timing, err := MeasureSerial(ds.Queries.Rows(), func(qi int) error {
			ids, err := perCat[queryCat].Search(ds.Queries.Row(qi), k, tsLo, tsHi, index.SearchParams{Ef: 256})
			if err != nil {
				return err
			}
			mapped := make([]int64, len(ids))
			for i, id := range ids {
				mapped[i] = int64(rowsOf[id]) // local → global row id
			}
			got[qi] = mapped
			return nil
		})
		if err != nil {
			return nil, err
		}
		results["Milvus-Partition"] = measured{dataset.Recall(truth, got), timing.Mean}
	}
	// pgvector-like: timestamp post-filter only; category filter also
	// applied post-hoc. Recall collapses (Table VII's "<0.35").
	{
		s := pgvectorlike.New(pgvectorlike.Config{Seed: cfg.Seed, M: 12, EfConstruction: 120}, storage.NewMemStore())
		pgAttrs := make([]int64, n)
		for i := range pgAttrs {
			pgAttrs[i] = ds.TSMillis[i]
		}
		if err := s.Load(ds.Vectors.Data, ds.Spec.Dim, pgAttrs); err != nil {
			return nil, err
		}
		got := make([][]int64, ds.Queries.Rows())
		for qi := range got {
			ids, err := s.Search(ds.Queries.Row(qi), k, tsLo, tsHi, index.SearchParams{Ef: 128})
			if err != nil {
				return nil, err
			}
			var kept []int64
			for _, id := range ids {
				if catOf(int(id)) == queryCat {
					kept = append(kept, id)
				}
			}
			got[qi] = kept
		}
		results["pgvector"] = measured{dataset.Recall(truth, got), 0}
	}

	base := results["Milvus"].latency
	for _, name := range []string{"Milvus", "Milvus-Partition", "BlendHouse", "BlendHouse-Partition"} {
		m := results[name]
		rep.AddRow(name, fmtRecall(m.recall), fmt.Sprint(m.latency),
			fmt.Sprintf("%.2fx", float64(base)/float64(m.latency)))
	}
	rep.AddRow("pgvector", fmtRecall(results["pgvector"].recall)+" (omitted: recall collapse)", "-", "-")
	rep.Note("shape holds (BH-Partition fastest, pgvector recall lowest): %v",
		results["BlendHouse-Partition"].latency < results["Milvus"].latency &&
			results["pgvector"].recall < results["BlendHouse"].recall)
	return rep, nil
}

// prodTable builds the production-like table, partitioned by category
// and clustered into semantic buckets when part is true.
func prodTable(cfg Config, ds *dataset.Dataset, part bool) (*lsm.Table, *exec.Executor, *plan.Planner, error) {
	schema := &storage.Schema{Columns: []storage.ColumnDef{
		{Name: "id", Type: storage.Int64Type},
		{Name: "category", Type: storage.StringType},
		{Name: "region", Type: storage.StringType},
		{Name: "ts", Type: storage.Int64Type},
		{Name: "embedding", Type: storage.VectorType, Dim: ds.Spec.Dim},
	}}
	opts := lsm.Options{
		Name: "t", Schema: schema,
		IndexColumn: "embedding", IndexType: index.HNSW,
		IndexParams: index.BuildParams{M: 12, EfConstruction: 120, Seed: cfg.Seed},
		SegmentRows: 800, PipelinedBuild: true, Seed: cfg.Seed,
	}
	if part {
		opts.PartitionBy = []string{"category"}
		opts.ClusterBuckets = 6
	}
	tab, err := lsm.Create(storage.NewMemStore(), opts)
	if err != nil {
		return nil, nil, nil, err
	}
	n := ds.Vectors.Rows()
	batch := storage.NewRowBatch(schema)
	for i := 0; i < n; i++ {
		batch.Col("id").Ints = append(batch.Col("id").Ints, int64(i))
		batch.Col("category").Strs = append(batch.Col("category").Strs, ds.Category[i])
		batch.Col("region").Strs = append(batch.Col("region").Strs, ds.Region[i])
		batch.Col("ts").Ints = append(batch.Col("ts").Ints, ds.TSMillis[i])
	}
	batch.Col("embedding").Vecs = append(batch.Col("embedding").Vecs, ds.Vectors.Data...)
	if err := tab.Insert(batch); err != nil {
		return nil, nil, nil, err
	}
	frac := 0.0
	if part {
		frac = 0.4
	}
	ccCfg := cache.DefaultColumnCacheConfig()
	ex := &exec.Executor{Table: tab, ColCache: cache.NewColumnCache(ccCfg), SemanticFraction: frac, MinSegments: 1}
	return tab, ex, plan.NewPlanner(plan.PlannerConfig{}), nil
}
