package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blendhouse/internal/sql"
	"blendhouse/internal/storage"
)

// insert executes an INSERT, converting literal rows (or a CSV file)
// into a columnar batch and handing it to the LSM engine — which
// performs partitioning, semantic bucketing and pipelined index
// building automatically, exactly as the paper's Example 1 promises
// ("BlendHouse handles partitioning and index building
// automatically"). With the WAL enabled the batch is group-committed
// to the durable log and is query-visible when this returns; segment
// cutting happens in the background flusher.
func (e *Engine) insert(ctx context.Context, ins *sql.Insert) (int, error) {
	t := e.Table(ins.Table)
	if t == nil {
		return 0, unknownTableErr(ins.Table)
	}
	var rows [][]any
	if ins.Infile != "" {
		var err error
		rows, err = readCSVRows(ins.Infile, t.Schema())
		if err != nil {
			return 0, err
		}
	} else {
		rows = ins.Rows
	}
	batch, err := BuildBatch(t.Schema(), rows)
	if err != nil {
		return 0, err
	}
	if err := t.InsertCtx(ctx, batch); err != nil {
		return 0, err
	}
	// New segments invalidate the executor's local index snapshot.
	if ex := e.Executor(ins.Table); ex != nil {
		ex.InvalidateLocalIndexes()
	}
	return batch.Len(), nil
}

// BuildBatch converts literal rows (schema order) into a columnar
// batch with type coercion: ints widen to floats, numeric strings are
// rejected (no implicit parsing), vectors must match the column
// dimension.
func BuildBatch(schema *storage.Schema, rows [][]any) (*storage.RowBatch, error) {
	batch := storage.NewRowBatch(schema)
	for ri, row := range rows {
		if len(row) != len(schema.Columns) {
			return nil, fmt.Errorf("core: row %d has %d values, schema has %d columns", ri, len(row), len(schema.Columns))
		}
		for ci, def := range schema.Columns {
			col := batch.Cols[ci]
			v := row[ci]
			switch def.Type {
			case storage.Int64Type, storage.DateTimeType:
				n, ok := coerceInt(v)
				if !ok {
					return nil, typeErr(ri, def, v)
				}
				col.Ints = append(col.Ints, n)
			case storage.Float64Type:
				f, ok := coerceFloat(v)
				if !ok {
					return nil, typeErr(ri, def, v)
				}
				col.Floats = append(col.Floats, f)
			case storage.StringType:
				s, ok := v.(string)
				if !ok {
					return nil, typeErr(ri, def, v)
				}
				col.Strs = append(col.Strs, s)
			case storage.VectorType:
				vecv, ok := v.([]float32)
				if !ok {
					return nil, typeErr(ri, def, v)
				}
				if len(vecv) != def.Dim {
					return nil, fmt.Errorf("core: row %d: vector for %q has dim %d, column dim %d", ri, def.Name, len(vecv), def.Dim)
				}
				col.Vecs = append(col.Vecs, vecv...)
			}
		}
	}
	return batch, nil
}

func typeErr(row int, def storage.ColumnDef, v any) error {
	return fmt.Errorf("core: row %d: value %v (%T) does not fit column %q %s", row, v, v, def.Name, def.Type)
}

func coerceInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		if x == float64(int64(x)) {
			return int64(x), true
		}
	}
	return 0, false
}

func coerceFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

// readCSVRows loads a CSV file whose columns follow the schema order.
// Vector cells hold semicolon-separated floats ("0.1;0.2;0.3").
func readCSVRows(path string, schema *storage.Schema) ([][]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening INFILE: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: reading INFILE: %w", err)
	}
	var rows [][]any
	for ri, rec := range records {
		if len(rec) != len(schema.Columns) {
			return nil, fmt.Errorf("core: csv line %d has %d fields, schema has %d columns", ri+1, len(rec), len(schema.Columns))
		}
		row := make([]any, len(rec))
		for ci, def := range schema.Columns {
			cell := rec[ci]
			switch def.Type {
			case storage.Int64Type, storage.DateTimeType:
				n, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("core: csv line %d column %q: %w", ri+1, def.Name, err)
				}
				row[ci] = n
			case storage.Float64Type:
				fl, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
				if err != nil {
					return nil, fmt.Errorf("core: csv line %d column %q: %w", ri+1, def.Name, err)
				}
				row[ci] = fl
			case storage.StringType:
				row[ci] = cell
			case storage.VectorType:
				parts := strings.Split(cell, ";")
				vecv := make([]float32, len(parts))
				for i, p := range parts {
					fl, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
					if err != nil {
						return nil, fmt.Errorf("core: csv line %d vector %q: %w", ri+1, def.Name, err)
					}
					vecv[i] = float32(fl)
				}
				row[ci] = vecv
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
