package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"blendhouse/internal/batch"
	"blendhouse/internal/core"
	"blendhouse/internal/obs"
	"blendhouse/internal/server"
	"blendhouse/pkg/client"
)

func init() {
	register("batch", "Multi-query batching: 16-client QPS with shared-scan groups vs per-statement execution (PR 9)", runBatch)
}

// batchClients is the client concurrency of the experiment; the
// admission gate stays at 4 slots so batching's one-slot-per-group
// accounting is what lets grouped queries overlap.
const batchClients = 16

// runBatch measures the batching subsystem end to end: the same
// dataset, admission sizing and 16-client closed loop through the HTTP
// tier, once with the scheduler off (every statement is its own
// admission slot and segment pass) and once with it on (compatible
// statements share one pass and one slot per group). Batched per-query
// results are asserted byte-identical to solo execution on the same
// engine, and the run hard-fails unless batching delivers materially
// higher throughput — the whole point of the subsystem.
func runBatch(cfg Config) (*Report, error) {
	ds := prodLike(cfg)
	ctx := context.Background()
	// A selective filter (2% of rows qualify) puts the workload on
	// plan A/B, where the per-segment scan work — predicate column,
	// bitset, qualifying vectors — is member-independent and therefore
	// shared across the group. Wide filters land on post-filter plans,
	// which share nothing and stay out of the scheduler by design.
	lo, hi := selRange(ds.Vectors.Rows(), 0.02)
	queryFor := func(qi int) string {
		return fmt.Sprintf(`SELECT id, dist FROM bench_batch WHERE attr >= %d AND attr <= %d ORDER BY L2Distance(embedding, %s) AS dist LIMIT 10`,
			lo, hi, vecSQL(ds.Queries.Row(qi%ds.Queries.Rows())))
	}

	build := func(bc *batch.Config) (*core.Engine, *server.Server, error) {
		// The standard 1ms-RTT remote store: per-statement wall time is
		// dominated by per-segment column reads, i.e. exactly the work a
		// shared scan pays once per group instead of once per query.
		store := remoteStore()
		engine, err := core.New(core.Config{Store: store, SegmentRows: 1000, Batch: bc})
		if err != nil {
			return nil, nil, err
		}
		if _, err := engine.Exec(ctx, fmt.Sprintf(`CREATE TABLE bench_batch (
			id UInt64,
			attr Int64,
			embedding Array(Float32),
			INDEX ann_idx embedding TYPE HNSW('DIM=%d','M=16','EF_CONSTRUCTION=100')
		) ORDER BY id`, ds.Spec.Dim)); err != nil {
			engine.Close()
			return nil, nil, err
		}
		attrs := seqAttrs(ds.Vectors.Rows())
		var sb strings.Builder
		for i := 0; i < ds.Vectors.Rows(); i++ {
			if sb.Len() == 0 {
				sb.WriteString("INSERT INTO bench_batch VALUES ")
			} else {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d, %s)", i, attrs[i], vecSQL(ds.Vectors.Row(i)))
			if sb.Len() > 4<<20 {
				if _, err := engine.Exec(ctx, sb.String()); err != nil {
					engine.Close()
					return nil, nil, err
				}
				sb.Reset()
			}
		}
		if sb.Len() > 0 {
			if _, err := engine.Exec(ctx, sb.String()); err != nil {
				engine.Close()
				return nil, nil, err
			}
		}
		srv, err := server.New(server.Config{
			Engine:    engine,
			Addr:      "127.0.0.1:0",
			Admission: server.AdmissionConfig{MaxConcurrent: 4, MaxQueue: 64},
		})
		if err != nil {
			engine.Close()
			return nil, nil, err
		}
		if err := srv.Start(); err != nil {
			engine.Close()
			return nil, nil, err
		}
		return engine, srv, nil
	}

	mGroups := obs.Default().Counter("bh.batch.groups")
	mGrouped := obs.Default().Counter("bh.batch.grouped_queries")
	n := cfg.Queries * 8

	type passResult struct {
		tm      Timing
		groups  int64
		grouped int64
	}
	runPass := func(bc *batch.Config) (passResult, error) {
		engine, srv, err := build(bc)
		if err != nil {
			return passResult{}, err
		}
		defer engine.Close()
		defer srv.Drain()
		c, err := client.New(client.Config{BaseURL: "http://" + srv.Addr()})
		if err != nil {
			return passResult{}, err
		}
		defer c.Close()
		if _, err := c.Query(ctx, queryFor(0)); err != nil {
			return passResult{}, err
		}
		groupsBefore, groupedBefore := mGroups.Value(), mGrouped.Value()
		tm, err := MeasureConcurrent(n, batchClients, func(qi int) error {
			_, err := c.Query(ctx, queryFor(qi))
			return err
		})
		if err != nil {
			return passResult{}, err
		}
		if bc != nil {
			// Byte-identity spot check on the measuring engine: a grouped
			// burst must answer exactly like solo execution.
			stmts := make([]string, batchClients)
			for i := range stmts {
				stmts[i] = queryFor(i)
			}
			results, errs := c.Queries(ctx, stmts)
			for i := range stmts {
				if errs[i] != nil {
					return passResult{}, fmt.Errorf("verify member %d: %w", i, errs[i])
				}
				want, err := engine.Query(ctx, stmts[i], core.QueryOptions{DisableBatch: true})
				if err != nil {
					return passResult{}, err
				}
				gotJSON, _ := json.Marshal(results[i].Rows)
				wantJSON, _ := json.Marshal(want.Rows)
				if string(gotJSON) != string(wantJSON) {
					return passResult{}, fmt.Errorf("batched result %d differs from solo execution:\nbatched: %s\nsolo:    %s", i, gotJSON, wantJSON)
				}
			}
		}
		return passResult{
			tm:      tm,
			groups:  mGroups.Value() - groupsBefore,
			grouped: mGrouped.Value() - groupedBefore,
		}, nil
	}

	off, err := runPass(nil)
	if err != nil {
		return nil, err
	}
	// Adaptive off: the experiment quantifies the mechanism's ceiling;
	// the cost model's routing is exercised by its own unit tests.
	on, err := runPass(&batch.Config{Window: 2 * time.Millisecond, MaxGroup: 16})
	if err != nil {
		return nil, err
	}
	if on.grouped == 0 {
		return nil, fmt.Errorf("batching pass formed no multi-query groups (grouped_queries delta = 0; groups=%d solo=%d ungroup=%d s1=%d)", on.groups,
			obs.Default().Counter("bh.batch.solo").Value(), obs.Default().Counter("bh.batch.ungroupable").Value(), obs.Default().Counter("bh.batch.group_size.1").Value())
	}
	if on.tm.QPS <= off.tm.QPS*1.2 {
		return nil, fmt.Errorf("batching did not pay: %.1f QPS batched vs %.1f unbatched (need >1.2x)", on.tm.QPS, off.tm.QPS)
	}

	rep := &Report{
		ID:      "batch",
		Title:   "Multi-query batching throughput at 16 clients through the HTTP serving tier",
		Headers: []string{"mode", "qps", "mean_ms", "p99_ms", "groups", "grouped_queries"},
	}
	rep.AddRow("batch-off",
		fmt.Sprintf("%.1f", off.tm.QPS),
		fmt.Sprintf("%.2f", float64(off.tm.Mean.Microseconds())/1000),
		fmt.Sprintf("%.2f", float64(off.tm.P99.Microseconds())/1000),
		"0", "0")
	rep.AddRow("batch-on",
		fmt.Sprintf("%.1f", on.tm.QPS),
		fmt.Sprintf("%.2f", float64(on.tm.Mean.Microseconds())/1000),
		fmt.Sprintf("%.2f", float64(on.tm.P99.Microseconds())/1000),
		fmt.Sprint(on.groups), fmt.Sprint(on.grouped))
	rep.Note("end-to-end: %d clients → HTTP/JSON → admission (4 slots, queue 64); %d queries per pass over a 1ms-RTT remote store; batching window 2ms, max group 16, one admission slot per group", batchClients, n)
	rep.Note("speedup: %.2fx QPS batched vs unbatched; per-query results asserted byte-identical to solo execution (hard failure otherwise)", on.tm.QPS/off.tm.QPS)
	return rep, nil
}
