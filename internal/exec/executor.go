package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"blendhouse/internal/bitset"
	"blendhouse/internal/cache"
	"blendhouse/internal/cluster"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/obs"
	"blendhouse/internal/plan"
	"blendhouse/internal/storage"
	"blendhouse/internal/vec"
	"blendhouse/internal/wal"
)

// Execution metrics (SHOW METRICS / the -debug-addr endpoint). The
// plan.* counters record which of the paper's plans A/B/C the
// optimizer actually ran; widen_rounds counts adaptive semantic-prune
// retries; segment_scans counts local-mode per-segment ANN/brute scans
// (VW-mode scans land in the bh.vw.search.* counters).
var (
	mVecQueries  = obs.Default().Counter("bh.query.vector.total")
	mPlanBrute   = obs.Default().Counter("bh.query.plan.brute_force")
	mPlanPre     = obs.Default().Counter("bh.query.plan.pre_filter")
	mPlanPost    = obs.Default().Counter("bh.query.plan.post_filter")
	mWidenRounds = obs.Default().Counter("bh.query.widen_rounds")
	mSegScans    = obs.Default().Counter("bh.exec.segment_scans")
)

// Executor runs physical plans against one table, either locally
// (VW == nil, indexes cached in-process) or distributed across a
// virtual warehouse. Per-segment work within a query runs on a
// bounded worker pool; see RunOptions.MaxParallelism.
type Executor struct {
	Table *lsm.Table
	VW    *cluster.VW
	// ColCache is the adaptive column cache (nil = direct reads).
	ColCache *cache.ColumnCache
	// SemanticFraction enables semantic segment pruning for vector
	// queries on clustered tables: only this fraction of segments
	// (nearest centroids first) is searched, widening adaptively when
	// results come back short. 0 disables.
	SemanticFraction float64
	// MinSegments floors the semantic cut.
	MinSegments int
	// MaxParallelism bounds the per-query segment fan-out (0 =
	// GOMAXPROCS). Individual runs can override it via RunOptions.
	MaxParallelism int
	// Stats, when non-nil, accumulates observed per-segment scan
	// latency and predicate selectivity — the live inputs of the
	// batched-vs-solo decision (plan.ChooseBatch). Fed by every scan,
	// solo and shared alike, so the averages stay fresh regardless of
	// which path the scheduler picks.
	Stats *obs.ScanStats

	localIdx sync.Map // segment name -> index.Index
}

// RunOptions tunes one execution.
type RunOptions struct {
	// Trace records a span tree and cache tallies for EXPLAIN ANALYZE
	// (nil = untraced; instrumentation is then a no-op).
	Trace *obs.Trace
	// MaxParallelism overrides the executor's segment fan-out for this
	// run (0 = executor default).
	MaxParallelism int
}

// ErrInvalidQuery tags execution-time validation failures that are the
// statement's fault (unknown column in a predicate, type mismatch), as
// opposed to engine faults. The core layer folds it into its ErrPlan
// class so network servers answer 4xx, not 5xx.
var ErrInvalidQuery = errors.New("exec: invalid query")

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    [][]any
	// Partial marks a result assembled from a strict subset of the data
	// holders that should have answered — set only by the scatter-gather
	// coordinator (internal/coord) when shard legs failed and the
	// session opted into partial results. Single-engine execution never
	// sets it.
	Partial bool
}

// hit is one ANN candidate qualified by segment.
type hit struct {
	meta   *storage.SegmentMeta
	offset int
	dist   float32
}

// Run executes a physical plan under ctx: a fired deadline or cancel
// stops remaining segment scans, widening rounds and in-flight remote
// reads promptly, returning the context's error.
func (e *Executor) Run(ctx context.Context, ph *plan.Physical) (*Result, error) {
	return e.RunWith(ctx, ph, RunOptions{})
}

// RunTraced is Run with a span tree and cache tallies recorded on tr
// when non-nil (the execution half of EXPLAIN ANALYZE). A nil trace
// makes every instrumentation call a no-op: no allocations, no locks,
// so untraced bench numbers are unaffected.
func (e *Executor) RunTraced(ctx context.Context, ph *plan.Physical, tr *obs.Trace) (*Result, error) {
	return e.RunWith(ctx, ph, RunOptions{Trace: tr})
}

// RunWith executes a physical plan with explicit per-run options.
// Results are deterministic: any parallelism degree returns exactly
// the rows (and ordering) of sequential execution.
func (e *Executor) RunWith(ctx context.Context, ph *plan.Physical, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := opts.Trace
	par := e.parallelism(opts.MaxParallelism)
	lg := ph.Logical
	root := tr.Span()
	// Traced queries carry a retry tally through the context: every
	// storage retry charged to this query surfaces as a root-span
	// attribute in EXPLAIN ANALYZE, alongside the circuit breaker's
	// state when the store has one.
	if tr != nil {
		tally := &storage.RetryTally{}
		ctx = storage.WithRetryTally(ctx, tally)
		// An IO tally rides along too: the segment read paths feed it,
		// and it materializes as a "storage" span so the trace attributes
		// tail latency to remote blob reads (summed across parallel
		// workers) without instrumenting every store implementation.
		io := &storage.IOTally{}
		ctx = storage.WithIOTally(ctx, io)
		defer func() {
			root.SetInt("store_retries", tally.Retries())
			if br, ok := e.Table.Store().(storage.BreakerReporter); ok {
				root.Set("store_breaker", br.BreakerState().String())
			}
			if reads, bytes, dur := io.Values(); reads > 0 {
				sp := root.ChildDur("storage", dur)
				sp.SetInt("reads", reads)
				sp.SetInt("bytes", bytes)
			}
		}()
	}
	preds, err := compilePredicates(e.Table.Schema(), lg.ScalarPreds)
	if err != nil {
		return nil, err
	}
	// One consistent view of segments + memtable snapshots for the
	// whole query: a concurrent memtable flush can't duplicate or drop
	// rows mid-execution.
	view := e.Table.View()
	if !lg.IsVectorQuery() {
		return e.runScalar(ctx, lg, preds, par, view, tr)
	}
	// Defense in depth: the planner validates query dimension on every
	// SQL path, but plans can also be constructed directly. A mismatch
	// here would otherwise surface as a slice-bounds panic deep inside
	// the distance kernels.
	if err := e.checkVectorDim(lg); err != nil {
		return nil, err
	}
	mVecQueries.Inc()
	switch ph.Strategy {
	case plan.BruteForce:
		mPlanBrute.Inc()
	case plan.PreFilter:
		mPlanPre.Inc()
	case plan.PostFilter:
		mPlanPost.Inc()
	}
	k := lg.K
	if k <= 0 {
		k = 100
	}
	params := lg.Params.WithDefaults(k)

	runStrategy := func(metas []*storage.SegmentMeta, sp *obs.Span) ([]hit, error) {
		switch ph.Strategy {
		case plan.BruteForce:
			return e.runBruteForce(ctx, lg, preds, metas, k, par, sp, tr)
		case plan.PreFilter:
			return e.runPreFilter(ctx, lg, preds, metas, k, par, params, sp, tr)
		case plan.PostFilter:
			return e.runPostFilter(ctx, lg, preds, metas, k, par, params, sp, tr)
		default:
			return nil, fmt.Errorf("exec: unknown strategy %v", ph.Strategy)
		}
	}

	// Unflushed rows: brute-force the memtable snapshots once — they
	// are immune to semantic widening (never pruned) but their hits
	// count toward k before a widening round is declared necessary.
	var memHits []hit
	if len(view.Mem) > 0 && lg.Range == nil {
		memSp := root.Child("mem-scan")
		memHits = memTopK(lg, preds, view.Mem, k)
		memSp.SetInt("snapshots", int64(len(view.Mem)))
		memSp.SetInt("hits", int64(len(memHits)))
		memSp.End()
	}

	frac := e.SemanticFraction
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		total := len(view.Segments)
		pruneSp := root.Child("prune")
		metas, prunedSemantically := e.pruneSegments(lg, preds, frac, view.Segments)
		pruneSp.SetInt("round", int64(round))
		pruneSp.SetInt("segments_total", int64(total))
		pruneSp.SetInt("segments_kept", int64(len(metas)))
		pruneSp.SetBool("semantic", prunedSemantically)
		if prunedSemantically {
			pruneSp.SetFloat("fraction", frac)
		}
		pruneSp.End()

		scanSp := root.Child("scan")
		scanSp.Set("strategy", ph.Strategy.String())
		var hits []hit
		var err error
		if lg.Range != nil {
			hits, err = e.runRange(ctx, lg, preds, metas, par, params, view.Mem, scanSp, tr)
		} else {
			hits, err = runStrategy(metas, scanSp)
		}
		scanSp.SetInt("hits", int64(len(hits)))
		scanSp.End()
		if err != nil {
			return nil, err
		}
		// Adaptive semantic widening (paper §IV-B): if pruning cost us
		// results, re-run over more segments.
		if prunedSemantically && len(hits)+len(memHits) < k && lg.Range == nil {
			mWidenRounds.Inc()
			round++
			frac = frac * 2
			if frac < 1 {
				continue
			}
			frac = 1 // final pass over everything
			metas, _ := e.pruneSegments(lg, preds, 0, view.Segments)
			finalSp := root.Child("scan")
			finalSp.Set("strategy", ph.Strategy.String())
			finalSp.Set("widen", "final")
			finalSp.SetInt("segments_kept", int64(len(metas)))
			hits, err = runStrategy(metas, finalSp)
			finalSp.SetInt("hits", int64(len(hits)))
			finalSp.End()
			if err != nil {
				return nil, err
			}
		}
		hits = append(hits, memHits...)
		sortHits(hits)
		if lg.Range == nil && len(hits) > k {
			hits = hits[:k]
		}
		return e.assemble(ctx, lg, hits, par, view, root, tr)
	}
}

func sortHits(hits []hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		if hits[i].meta.Name != hits[j].meta.Name {
			return hits[i].meta.Name < hits[j].meta.Name
		}
		return hits[i].offset < hits[j].offset
	})
}

// checkVectorDim rejects query vectors whose length differs from the
// vector column's declared dimension, as a statement fault
// (ErrInvalidQuery → 4xx), before any kernel sees the data.
func (e *Executor) checkVectorDim(lg *plan.Logical) error {
	if lg.Distance == nil {
		return nil
	}
	col := lg.VectorColumn
	if col == "" {
		col = lg.Distance.Column
	}
	_, def := e.Table.Schema().Col(col)
	if def == nil {
		return fmt.Errorf("%w: unknown vector column %q", ErrInvalidQuery, col)
	}
	if len(lg.Distance.Query) != def.Dim {
		return fmt.Errorf("%w: query vector dim %d != column dim %d", ErrInvalidQuery, len(lg.Distance.Query), def.Dim)
	}
	return nil
}

// pruneSegments applies partition, min/max and semantic pruning to
// the query's captured segment view.
func (e *Executor) pruneSegments(lg *plan.Logical, preds []compiledPred, semanticFrac float64, all []*storage.SegmentMeta) ([]*storage.SegmentMeta, bool) {
	opts := cluster.PruneOptions{
		IntRanges:   map[string][2]int64{},
		FloatRanges: map[string][2]float64{},
	}
	tOpts := e.Table.Options()
	for _, p := range preds {
		if p.intRange != nil {
			opts.IntRanges[p.col] = mergeInt(opts.IntRanges[p.col], *p.intRange)
		}
		if p.floatRange != nil {
			opts.FloatRanges[p.col] = *p.floatRange
		}
		// Partition pruning for single-column string partitions.
		if p.eqString != nil && len(tOpts.PartitionBy) == 1 && tOpts.PartitionBy[0] == p.col {
			opts.Partitions = map[string]bool{*p.eqString: true}
		}
	}
	if semanticFrac > 0 && semanticFrac < 1 && lg.Distance != nil {
		opts.QueryVector = lg.Distance.Query
		opts.SemanticFraction = semanticFrac
		opts.MinSegments = e.MinSegments
	}
	kept := cluster.PruneSegments(e.Table, all, opts)
	return kept, opts.SemanticFraction > 0 && len(kept) < len(all)
}

func mergeInt(existing [2]int64, nw [2]int64) [2]int64 {
	if existing == ([2]int64{}) {
		return nw
	}
	lo, hi := existing[0], existing[1]
	if nw[0] > lo {
		lo = nw[0]
	}
	if nw[1] < hi {
		hi = nw[1]
	}
	return [2]int64{lo, hi}
}

// predicateBitset evaluates the scalar conjuncts over a whole segment
// (the structured scan of plans A and B) and subtracts the delete
// bitmap. Returns nil when the segment has neither predicates nor
// deletes (= unfiltered).
func (e *Executor) predicateBitset(ctx context.Context, meta *storage.SegmentMeta, preds []compiledPred, tr *obs.Trace) (*bitset.Bitset, error) {
	del, err := e.Table.DeleteBitmapCtx(ctx, meta.Name)
	if err != nil {
		return nil, err
	}
	if len(preds) == 0 && del == nil {
		return nil, nil
	}
	bs := bitset.NewFull(meta.Rows)
	if len(preds) > 0 {
		rd, err := e.Table.Reader(meta.Name)
		if err != nil {
			return nil, err
		}
		cols := map[string]*storage.ColumnData{}
		for _, p := range preds {
			if _, ok := cols[p.col]; ok {
				continue
			}
			var c *storage.ColumnData
			if e.ColCache != nil {
				c, err = e.ColCache.ReadColumnTally(ctx, rd, p.col, tr.ColTally())
			} else {
				c, err = rd.ReadColumnCtx(ctx, p.col)
			}
			if err != nil {
				return nil, err
			}
			cols[p.col] = c
		}
		for row := 0; row < meta.Rows; row++ {
			for _, p := range preds {
				if !p.eval(cols[p.col], row) {
					bs.Clear(row)
					break
				}
			}
		}
	}
	if e.Stats != nil && len(preds) > 0 && meta.Rows > 0 {
		e.Stats.Selectivity.Observe(float64(bs.Count()) / float64(meta.Rows))
	}
	if del != nil {
		bs.AndNot(del)
	}
	return bs, nil
}

// segmentIndex loads a segment's index for single-node execution.
func (e *Executor) segmentIndex(ctx context.Context, meta *storage.SegmentMeta, tr *obs.Trace) (index.Index, error) {
	if v, ok := e.localIdx.Load(meta.Name); ok {
		tr.IdxTally().Hit()
		return v.(index.Index), nil
	}
	tr.IdxTally().Miss()
	ix, err := e.Table.OpenIndexCtx(ctx, meta.Name)
	if err != nil {
		return nil, err
	}
	actual, _ := e.localIdx.LoadOrStore(meta.Name, ix)
	return actual.(index.Index), nil
}

// InvalidateLocalIndexes drops the single-node index cache (used after
// compaction in long-running tests/benches). Keys are deleted in place
// rather than swapping the map, which would race with concurrent loads.
func (e *Executor) InvalidateLocalIndexes() {
	e.localIdx.Range(func(k, _ any) bool {
		e.localIdx.Delete(k)
		return true
	})
}

// --- plan A: brute force -----------------------------------------------------

func (e *Executor) runBruteForce(ctx context.Context, lg *plan.Logical, preds []compiledPred, metas []*storage.SegmentMeta, k, par int, sp *obs.Span, tr *obs.Trace) ([]hit, error) {
	return e.scanSegments(ctx, metas, k, par, sp, func(ctx context.Context, m *storage.SegmentMeta, ssp *obs.Span, emit func(hit)) error {
		ssp.SetInt("rows", int64(m.Rows))
		mSegScans.Inc()
		bs, err := e.predicateBitset(ctx, m, preds, tr)
		if err != nil {
			return err
		}
		s := getScratch()
		defer putScratch(s)
		if bs == nil {
			for i := 0; i < m.Rows; i++ {
				s.rows = append(s.rows, i)
			}
		} else {
			s.rows = bs.AppendOnes(s.rows)
		}
		rows := s.rows
		ssp.SetInt("filtered_rows", int64(len(rows)))
		if len(rows) == 0 {
			return nil
		}
		rd, err := e.Table.Reader(m.Name)
		if err != nil {
			return err
		}
		vcol, err := e.readRows(ctx, rd, lg.VectorColumn, rows, len(rows), tr)
		if err != nil {
			return err
		}
		// The fetched rows are compacted contiguously in vcol.Vecs, so
		// the blocked kernels apply directly; L2 additionally abandons
		// rows early against the running top-k worst (kept candidates
		// are bitwise identical to a per-row scan — see internal/vec).
		t := index.GetTopK(k)
		defer index.PutTopK(t)
		q := lg.Distance.Query
		dim := vcol.Def.Dim
		data := vcol.Vecs
		var dists [scanBlock]float32
		n := len(rows)
		for base := 0; base < n; base += scanBlock {
			br := n - base
			if br > scanBlock {
				br = scanBlock
			}
			block := data[base*dim : (base+br)*dim]
			if lg.Metric == vec.L2 {
				thr := float32(math.MaxFloat32)
				if w, ok := t.Worst(); ok {
					thr = w
				}
				vec.L2SquaredBatchThreshold(q, block, dim, dists[:br], thr)
			} else {
				vec.DistancesTo(lg.Metric, q, block, dim, dists[:br])
			}
			for j := 0; j < br; j++ {
				t.Push(index.Candidate{ID: int64(rows[base+j]), Dist: dists[j]})
			}
		}
		s.cands = t.AppendResults(s.cands[:0])
		for _, c := range s.cands {
			emit(hit{meta: m, offset: int(c.ID), dist: c.Dist})
		}
		ssp.SetInt("candidates", int64(len(s.cands)))
		return nil
	})
}

// --- plan B: pre-filter --------------------------------------------------------

func (e *Executor) runPreFilter(ctx context.Context, lg *plan.Logical, preds []compiledPred, metas []*storage.SegmentMeta, k, par int, params index.SearchParams, sp *obs.Span, tr *obs.Trace) ([]hit, error) {
	if e.VW != nil {
		// Distributed mode: the structured scan (per-segment predicate
		// bitsets) fans out on the local pool, then the VW scatters the
		// ANN scans across workers.
		bitsets, err := gatherSegments(ctx, metas, par, func(ctx context.Context, _ int, m *storage.SegmentMeta) (*bitset.Bitset, error) {
			return e.predicateBitset(ctx, m, preds, tr)
		})
		if err != nil {
			return nil, err
		}
		filters := map[string]*bitset.Bitset{}
		searchable := metas[:0:0]
		for i, m := range metas {
			if bs := bitsets[i]; bs == nil || bs.Any() {
				filters[m.Name] = bitsets[i]
				searchable = append(searchable, m)
			}
		}
		if len(searchable) == 0 {
			return nil, nil
		}
		cands, err := e.VW.Search(ctx, e.Table, searchable, lg.Distance.Query, k, cluster.SearchOptions{
			Params: params, Filters: filters,
			Span: sp, IdxTally: tr.IdxTally(),
		})
		if err != nil {
			return nil, err
		}
		byName := metaIndex(searchable)
		out := make([]hit, len(cands))
		for i, c := range cands {
			out[i] = hit{meta: byName[c.Segment], offset: int(c.Offset), dist: c.Dist}
		}
		return out, nil
	}
	// Local mode: fuse structured scan + ANN scan per segment on the
	// worker pool.
	return e.scanSegments(ctx, metas, k, par, sp, func(ctx context.Context, m *storage.SegmentMeta, ssp *obs.Span, emit func(hit)) error {
		bs, err := e.predicateBitset(ctx, m, preds, tr)
		if err != nil {
			return err
		}
		if bs != nil && !bs.Any() {
			return nil // nothing qualifies in this segment
		}
		ssp.SetInt("rows", int64(m.Rows))
		mSegScans.Inc()
		ix, err := e.segmentIndex(ctx, m, tr)
		if err != nil {
			return err
		}
		cands, err := ix.SearchWithFilter(lg.Distance.Query, k, bs, params)
		if err != nil {
			return err
		}
		for _, c := range cands {
			emit(hit{meta: m, offset: int(c.ID), dist: c.Dist})
		}
		ssp.SetInt("candidates", int64(len(cands)))
		return nil
	})
}

func metaIndex(metas []*storage.SegmentMeta) map[string]*storage.SegmentMeta {
	out := make(map[string]*storage.SegmentMeta, len(metas))
	for _, m := range metas {
		out[m.Name] = m
	}
	return out
}

// --- plan C: post-filter --------------------------------------------------------

// runPostFilter opens an incremental search per segment, filters each
// candidate batch against the scalar predicates (reading only the
// predicate columns of the candidate rows), and iterates until k
// qualifying rows per segment or exhaustion — Figure 2's SearchIterator
// + partial-top-k-before-filter pipeline. Segments run concurrently on
// the worker pool.
func (e *Executor) runPostFilter(ctx context.Context, lg *plan.Logical, preds []compiledPred, metas []*storage.SegmentMeta, k, par int, params index.SearchParams, sp *obs.Span, tr *obs.Trace) ([]hit, error) {
	return e.scanSegments(ctx, metas, k, par, sp, func(ctx context.Context, m *storage.SegmentMeta, ssp *obs.Span, emit func(hit)) error {
		ssp.SetInt("rows", int64(m.Rows))
		mSegScans.Inc()
		hits, err := e.postFilterSegment(ctx, lg, preds, m, k, params, ssp, tr)
		if err != nil {
			return err
		}
		for _, h := range hits {
			emit(h)
		}
		ssp.SetInt("candidates", int64(len(hits)))
		return nil
	})
}

func (e *Executor) postFilterSegment(ctx context.Context, lg *plan.Logical, preds []compiledPred, m *storage.SegmentMeta, k int, params index.SearchParams, ssp *obs.Span, tr *obs.Trace) ([]hit, error) {
	var it index.Iterator
	var err error
	if e.VW != nil {
		owner := e.VW.Worker(e.VW.Workers()[0])
		// Iterators are stateful: run on the segment's assigned worker.
		assign := e.VW.ScheduleSegments(e.Table, []*storage.SegmentMeta{m})
		for wid := range assign {
			owner = e.VW.Worker(wid)
		}
		if owner == nil {
			return nil, fmt.Errorf("exec: no worker for segment %s", m.Name)
		}
		ssp.Set("worker", owner.ID)
		it, err = owner.OpenIterator(ctx, e.Table, m, lg.Distance.Query, k, params)
	} else {
		ix, ierr := e.segmentIndex(ctx, m, tr)
		if ierr != nil {
			return nil, ierr
		}
		it, err = index.OpenIterator(ix, lg.Distance.Query, k, params)
	}
	if err != nil {
		return nil, err
	}
	defer it.Close()

	del, err := e.Table.DeleteBitmapCtx(ctx, m.Name)
	if err != nil {
		return nil, err
	}
	rd, err := e.Table.Reader(m.Name)
	if err != nil {
		return nil, err
	}
	var out []hit
	batch := k
	if batch < 16 {
		batch = 16
	}
	batches := 0
	for len(out) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands, err := it.Next(batch)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
		batches++
		// Evaluate predicates only on the candidate rows.
		rows := make([]int, 0, len(cands))
		kept := make([]index.Candidate, 0, len(cands))
		for _, c := range cands {
			if del != nil && del.Test(int(c.ID)) {
				continue
			}
			rows = append(rows, int(c.ID))
			kept = append(kept, c)
		}
		if len(rows) == 0 {
			continue
		}
		pass := make([]bool, len(rows))
		for i := range pass {
			pass[i] = true
		}
		for _, p := range preds {
			col, err := e.readRows(ctx, rd, p.col, rows, len(rows), tr)
			if err != nil {
				return nil, err
			}
			for i := range rows {
				if pass[i] && !p.eval(col, i) {
					pass[i] = false
				}
			}
		}
		for i, c := range kept {
			if pass[i] {
				out = append(out, hit{meta: m, offset: int(c.ID), dist: c.Dist})
				if len(out) == k {
					break
				}
			}
		}
	}
	ssp.SetInt("batches", int64(batches))
	return out, nil
}

// --- range search ---------------------------------------------------------------

func (e *Executor) runRange(ctx context.Context, lg *plan.Logical, preds []compiledPred, metas []*storage.SegmentMeta, par int, params index.SearchParams, mem []*wal.MemSnapshot, sp *obs.Span, tr *obs.Trace) ([]hit, error) {
	radius := internalRadius(lg)
	// Range results are unbounded (k = 0): every in-radius hit must
	// survive the merge before the final truncation.
	all, err := e.scanSegments(ctx, metas, 0, par, sp, func(ctx context.Context, m *storage.SegmentMeta, ssp *obs.Span, emit func(hit)) error {
		bs, err := e.predicateBitset(ctx, m, preds, tr)
		if err != nil {
			return err
		}
		if bs != nil && !bs.Any() {
			return nil
		}
		ssp.SetInt("rows", int64(m.Rows))
		mSegScans.Inc()
		var cands []index.Candidate
		if e.VW != nil {
			owner := e.VW.Worker(e.ownerOf(m))
			if owner == nil {
				return fmt.Errorf("exec: no worker for segment %s", m.Name)
			}
			ssp.Set("worker", owner.ID)
			cands, err = owner.RangeSegment(ctx, e.Table, m, lg.Distance.Query, radius, params, bs)
		} else {
			ix, ierr := e.segmentIndex(ctx, m, tr)
			if ierr != nil {
				return ierr
			}
			cands, err = ix.SearchWithRange(lg.Distance.Query, radius, bs, params)
		}
		if err != nil {
			return err
		}
		for _, c := range cands {
			emit(hit{meta: m, offset: int(c.ID), dist: c.Dist})
		}
		ssp.SetInt("candidates", int64(len(cands)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	all = append(all, memRange(lg, preds, mem, radius)...)
	if lg.K > 0 && len(all) > lg.K {
		sortHits(all)
		all = all[:lg.K]
	}
	return all, nil
}

// internalRadius translates a user-facing range radius into index
// space: internal distances negate IP and square L2.
func internalRadius(lg *plan.Logical) float32 {
	radius := lg.Range.Radius
	switch lg.Metric {
	case vec.L2:
		radius = radius * radius
	case vec.InnerProduct:
		radius = -radius
	}
	return radius
}

func (e *Executor) ownerOf(m *storage.SegmentMeta) string {
	assign := e.VW.ScheduleSegments(e.Table, []*storage.SegmentMeta{m})
	for wid := range assign {
		return wid
	}
	return ""
}

// --- scalar-only queries ----------------------------------------------------------

func (e *Executor) runScalar(ctx context.Context, lg *plan.Logical, preds []compiledPred, par int, view lsm.QueryView, tr *obs.Trace) (*Result, error) {
	metas, _ := e.pruneSegments(lg, preds, 0, view.Segments)
	sp := tr.Span().Child("scalar-scan")
	sp.SetInt("segments", int64(len(metas)))
	sp.SetInt("mem_snapshots", int64(len(view.Mem)))
	type scalarRow struct {
		meta   *storage.SegmentMeta
		offset int
		sortV  float64
		sortS  string
	}
	// Segments scan concurrently; the positional gather keeps segment
	// order, so the concatenation (and therefore the stable sort and
	// LIMIT below) matches sequential execution exactly.
	perSeg, err := gatherSegments(ctx, metas, par, func(ctx context.Context, _ int, m *storage.SegmentMeta) ([]scalarRow, error) {
		bs, err := e.predicateBitset(ctx, m, preds, tr)
		if err != nil {
			return nil, err
		}
		var offsets []int
		if bs == nil {
			offsets = make([]int, m.Rows)
			for i := range offsets {
				offsets[i] = i
			}
		} else {
			offsets = bs.Ones()
		}
		if len(offsets) == 0 {
			return nil, nil
		}
		var sortCol *storage.ColumnData
		if lg.OrderColumn != "" {
			rd, err := e.Table.Reader(m.Name)
			if err != nil {
				return nil, err
			}
			sortCol, err = e.readRows(ctx, rd, lg.OrderColumn, offsets, len(offsets), tr)
			if err != nil {
				return nil, err
			}
		}
		rows := make([]scalarRow, 0, len(offsets))
		for i, off := range offsets {
			r := scalarRow{meta: m, offset: off}
			if sortCol != nil {
				switch sortCol.Def.Type {
				case storage.Int64Type, storage.DateTimeType:
					r.sortV = float64(sortCol.Ints[i])
				case storage.Float64Type:
					r.sortV = sortCol.Floats[i]
				case storage.StringType:
					r.sortS = sortCol.Strs[i]
				}
			}
			rows = append(rows, r)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []scalarRow
	for _, rs := range perSeg {
		rows = append(rows, rs...)
	}
	// Unflushed rows from the memtable snapshots, appended after every
	// segment's rows (their synthetic names sort last) so unordered
	// LIMIT results stay deterministic.
	for _, snap := range view.Mem {
		mMemScans.Inc()
		var sortCol *storage.ColumnData
		if lg.OrderColumn != "" {
			sortCol = snap.Col(lg.OrderColumn)
		}
		for row := 0; row < snap.Rows(); row++ {
			if !snap.Alive(row) || !memPass(preds, snap, row) {
				continue
			}
			r := scalarRow{meta: snap.Meta, offset: row}
			if sortCol != nil {
				switch sortCol.Def.Type {
				case storage.Int64Type, storage.DateTimeType:
					r.sortV = float64(sortCol.Ints[row])
				case storage.Float64Type:
					r.sortV = sortCol.Floats[row]
				case storage.StringType:
					r.sortS = sortCol.Strs[row]
				}
			}
			rows = append(rows, r)
		}
	}
	if lg.OrderColumn != "" {
		sort.SliceStable(rows, func(i, j int) bool {
			less := rows[i].sortV < rows[j].sortV || (rows[i].sortV == rows[j].sortV && rows[i].sortS < rows[j].sortS)
			if lg.Desc {
				return !less && !(rows[i].sortV == rows[j].sortV && rows[i].sortS == rows[j].sortS)
			}
			return less
		})
	}
	if lg.K > 0 && len(rows) > lg.K {
		rows = rows[:lg.K]
	}
	hits := make([]hit, len(rows))
	for i, r := range rows {
		hits[i] = hit{meta: r.meta, offset: r.offset, dist: float32(math.NaN())}
	}
	sp.SetInt("hits", int64(len(hits)))
	sp.End()
	return e.assemble(ctx, lg, hits, par, view, tr.Span(), tr)
}

// --- output assembly ---------------------------------------------------------------

// readRows fetches rows of one column, through the adaptive column
// cache when configured.
func (e *Executor) readRows(ctx context.Context, rd *storage.SegmentReader, col string, rows []int, queryRows int, tr *obs.Trace) (*storage.ColumnData, error) {
	if e.ColCache != nil {
		return e.ColCache.ReadRowsTally(ctx, rd, col, rows, queryRows, tr.ColTally())
	}
	return rd.ReadRowsCtx(ctx, col, rows)
}

// assemble fetches the projection columns for the final hits and
// builds result rows in hit order. Column fetches fan out per segment
// on the worker pool; memtable hits read straight from their frozen
// snapshots.
func (e *Executor) assemble(ctx context.Context, lg *plan.Logical, hits []hit, par int, view lsm.QueryView, sp *obs.Span, tr *obs.Trace) (*Result, error) {
	asp := sp.Child("assemble")
	asp.SetInt("rows", int64(len(hits)))
	defer asp.End()
	cols := lg.Projection
	if lg.Star {
		cols = nil
		for _, c := range e.Table.Schema().Columns {
			cols = append(cols, c.Name)
		}
		if lg.DistAlias != "" {
			cols = append(cols, lg.DistAlias)
		}
	}
	res := &Result{Columns: cols}
	if len(hits) == 0 {
		return res, nil
	}
	// Group hits by segment, fetch each needed column once per
	// segment (concurrently across segments), then emit in global
	// order.
	bySeg := map[string][]int{} // segment -> indices into hits
	var segOrder []*storage.SegmentMeta
	for i, h := range hits {
		if _, seen := bySeg[h.meta.Name]; !seen {
			segOrder = append(segOrder, h.meta)
		}
		bySeg[h.meta.Name] = append(bySeg[h.meta.Name], i)
	}
	type colKey struct{ seg, col string }
	type segFetch struct {
		cols map[string]*storage.ColumnData
		pos  map[int]int // hit idx -> position in fetched rows
	}
	memSnaps := memSnapshotIndex(view.Mem)
	fetches, err := gatherSegments(ctx, segOrder, par, func(ctx context.Context, _ int, m *storage.SegmentMeta) (segFetch, error) {
		idxs := bySeg[m.Name]
		rows := make([]int, len(idxs))
		pos := map[int]int{}
		for i, hi := range idxs {
			rows[i] = hits[hi].offset
			pos[hi] = i
		}
		sf := segFetch{cols: map[string]*storage.ColumnData{}, pos: pos}
		if snap, ok := memSnaps[m.Name]; ok {
			for _, c := range cols {
				if c == lg.DistAlias && lg.DistAlias != "" {
					continue
				}
				cd := memFetchColumn(snap, c, rows)
				if cd == nil {
					return segFetch{}, fmt.Errorf("%w: unknown column %q", ErrInvalidQuery, c)
				}
				sf.cols[c] = cd
			}
			return sf, nil
		}
		rd, err := e.Table.Reader(m.Name)
		if err != nil {
			return segFetch{}, err
		}
		for _, c := range cols {
			if c == lg.DistAlias && lg.DistAlias != "" {
				continue
			}
			cd, err := e.readRows(ctx, rd, c, rows, len(hits), tr)
			if err != nil {
				return segFetch{}, err
			}
			sf.cols[c] = cd
		}
		return sf, nil
	})
	if err != nil {
		return nil, err
	}
	fetched := map[colKey]*storage.ColumnData{}
	rowPos := map[string]map[int]int{}
	for i, m := range segOrder {
		rowPos[m.Name] = fetches[i].pos
		for c, cd := range fetches[i].cols {
			fetched[colKey{m.Name, c}] = cd
		}
	}
	for hi, h := range hits {
		row := make([]any, len(cols))
		for ci, c := range cols {
			if c == lg.DistAlias && lg.DistAlias != "" {
				row[ci] = outputDistance(lg.Metric, h.dist)
				continue
			}
			cd := fetched[colKey{h.meta.Name, c}]
			p := rowPos[h.meta.Name][hi]
			row[ci] = columnValue(cd, p)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// outputDistance converts internal index distances to user-facing
// values: L2 is reported as true Euclidean distance, inner product is
// un-negated, cosine passes through.
func outputDistance(m vec.Metric, d float32) float64 {
	switch m {
	case vec.L2:
		return math.Sqrt(float64(d))
	case vec.InnerProduct:
		return float64(-d)
	default:
		return float64(d)
	}
}

func columnValue(cd *storage.ColumnData, row int) any {
	switch cd.Def.Type {
	case storage.Int64Type, storage.DateTimeType:
		return cd.Ints[row]
	case storage.Float64Type:
		return cd.Floats[row]
	case storage.StringType:
		return cd.Strs[row]
	case storage.VectorType:
		return append([]float32(nil), cd.Vector(row)...)
	}
	return nil
}
