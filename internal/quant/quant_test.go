package quant

import (
	"math"
	"math/rand"
	"testing"

	"blendhouse/internal/vec"
)

func randomData(rows, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, rows*dim)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

// --- scalar quantizer ----------------------------------------------------

func TestScalarRoundTripError(t *testing.T) {
	dim := 16
	data := randomData(500, dim, 1)
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, sq.CodeSize())
	dec := make([]float32, dim)
	var worst float64
	for r := 0; r < 500; r++ {
		v := data[r*dim : (r+1)*dim]
		sq.Encode(v, code)
		sq.Decode(code, dec)
		for d := 0; d < dim; d++ {
			e := math.Abs(float64(v[d] - dec[d]))
			if e > worst {
				worst = e
			}
		}
	}
	// 8-bit over a range of ~2 ⇒ step ~1/128; allow one step of error.
	if worst > 2.0/255+1e-4 {
		t.Fatalf("worst reconstruction error %v too large", worst)
	}
}

func TestScalarL2ToCodeMatchesDecode(t *testing.T) {
	dim := 10
	data := randomData(100, dim, 2)
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	code := make([]byte, dim)
	dec := make([]float32, dim)
	for r := 1; r < 50; r++ {
		sq.Encode(data[r*dim:(r+1)*dim], code)
		sq.Decode(code, dec)
		want := vec.L2Squared(q, dec)
		got := sq.L2ToCode(q, code)
		if math.Abs(float64(want-got)) > 1e-3 {
			t.Fatalf("row %d: L2ToCode %v != decode-then-L2 %v", r, got, want)
		}
	}
}

func TestScalarDotToCode(t *testing.T) {
	dim := 8
	data := randomData(50, dim, 3)
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	code := make([]byte, dim)
	dec := make([]float32, dim)
	sq.Encode(data[dim:2*dim], code)
	sq.Decode(code, dec)
	if got, want := sq.DotToCode(q, code), vec.Dot(q, dec); math.Abs(float64(got-want)) > 1e-3 {
		t.Fatalf("DotToCode %v != %v", got, want)
	}
}

func TestScalarConstantDimension(t *testing.T) {
	dim := 4
	data := make([]float32, 20*dim)
	for r := 0; r < 20; r++ {
		data[r*dim] = 7 // constant first dim
		for d := 1; d < dim; d++ {
			data[r*dim+d] = float32(r) * 0.1
		}
	}
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, dim)
	dec := make([]float32, dim)
	sq.Encode(data[:dim], code)
	sq.Decode(code, dec)
	if dec[0] != 7 {
		t.Fatalf("constant dim decoded to %v, want 7", dec[0])
	}
}

func TestScalarTrainErrors(t *testing.T) {
	if _, err := TrainScalar(nil, 4); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := TrainScalar(make([]float32, 7), 4); err == nil {
		t.Error("ragged data should fail")
	}
	if _, err := TrainScalar(make([]float32, 8), 0); err == nil {
		t.Error("dim 0 should fail")
	}
}

func TestScalarMarshalRoundTrip(t *testing.T) {
	dim := 6
	data := randomData(100, dim, 4)
	sq, err := TrainScalar(data, dim)
	if err != nil {
		t.Fatal(err)
	}
	sq2, err := UnmarshalScalar(sq.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	code1 := make([]byte, dim)
	code2 := make([]byte, dim)
	sq.Encode(data[:dim], code1)
	sq2.Encode(data[:dim], code2)
	for d := range code1 {
		if code1[d] != code2[d] {
			t.Fatal("marshal roundtrip changed encoding")
		}
	}
	if _, err := UnmarshalScalar([]byte{1}); err == nil {
		t.Error("truncated blob should fail")
	}
}

// --- product quantizer ---------------------------------------------------

func TestPQTrainValidation(t *testing.T) {
	data := randomData(100, 8, 5)
	if _, err := TrainPQ(data, 8, 3, 8, 1); err == nil {
		t.Error("M not dividing dim should fail")
	}
	if _, err := TrainPQ(data, 8, 4, 5, 1); err == nil {
		t.Error("nbits=5 should fail")
	}
	if _, err := TrainPQ(nil, 8, 4, 8, 1); err == nil {
		t.Error("empty data should fail")
	}
}

func TestPQReconstructionBeatsRandom(t *testing.T) {
	dim := 16
	data := randomData(800, dim, 6)
	pq, err := TrainPQ(data, dim, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, pq.CodeSize())
	dec := make([]float32, dim)
	var reconErr, randErr float64
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < 200; r++ {
		v := data[r*dim : (r+1)*dim]
		pq.Encode(v, code)
		pq.Decode(code, dec)
		reconErr += float64(vec.L2Squared(v, dec))
		other := data[rng.Intn(800)*dim:]
		randErr += float64(vec.L2Squared(v, other[:dim]))
	}
	if reconErr >= randErr/2 {
		t.Fatalf("PQ reconstruction error %v not much better than random pairing %v", reconErr, randErr)
	}
}

func TestADCMatchesDecodedDistance(t *testing.T) {
	dim := 12
	data := randomData(400, dim, 7)
	for _, nbits := range []int{4, 8} {
		pq, err := TrainPQ(data, dim, 4, nbits, 2)
		if err != nil {
			t.Fatal(err)
		}
		q := data[:dim]
		adc := pq.BuildADC(vec.L2, q)
		code := make([]byte, pq.CodeSize())
		dec := make([]float32, dim)
		for r := 1; r < 100; r++ {
			pq.Encode(data[r*dim:(r+1)*dim], code)
			pq.Decode(code, dec)
			want := vec.L2Squared(q, dec)
			got := adc.Distance(code)
			if math.Abs(float64(want-got)) > 1e-3 {
				t.Fatalf("nbits=%d row %d: ADC %v != decoded L2 %v", nbits, r, got, want)
			}
		}
	}
}

func TestADCInnerProduct(t *testing.T) {
	dim := 8
	data := randomData(300, dim, 8)
	pq, err := TrainPQ(data, dim, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	adc := pq.BuildADC(vec.InnerProduct, q)
	code := make([]byte, pq.CodeSize())
	dec := make([]float32, dim)
	pq.Encode(data[dim:2*dim], code)
	pq.Decode(code, dec)
	want := -vec.Dot(q, dec)
	if got := adc.Distance(code); math.Abs(float64(want-got)) > 1e-3 {
		t.Fatalf("IP ADC %v != %v", got, want)
	}
}

func TestPQ4BitCodePacking(t *testing.T) {
	dim := 8
	data := randomData(300, dim, 10)
	pq, err := TrainPQ(data, dim, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pq.CodeSize() != 2 {
		t.Fatalf("4 subquantizers × 4 bits should pack to 2 bytes, got %d", pq.CodeSize())
	}
	code := make([]byte, 2)
	pq.Encode(data[:dim], code)
	// Every nibble must be < 16 by construction; decode must not panic.
	dec := make([]float32, dim)
	pq.Decode(code, dec)
}

func TestPQMarshalRoundTrip(t *testing.T) {
	dim := 8
	data := randomData(300, dim, 11)
	pq, err := TrainPQ(data, dim, 4, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pq2, err := UnmarshalPQ(pq.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	c1 := make([]byte, pq.CodeSize())
	c2 := make([]byte, pq2.CodeSize())
	pq.Encode(data[:dim], c1)
	pq2.Encode(data[:dim], c2)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("marshal roundtrip changed encoding")
		}
	}
	if _, err := UnmarshalPQ([]byte{0, 1, 2}); err == nil {
		t.Error("truncated blob should fail")
	}
}
