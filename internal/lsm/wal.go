package lsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
	"blendhouse/internal/wal"
)

// Real-time write path metrics.
var (
	mFlushRuns  = obs.Default().Counter("bh.lsm.flush.runs")
	mFlushRows  = obs.Default().Counter("bh.lsm.flush.rows")
	mFlushDur   = obs.Default().Histogram("bh.lsm.flush.duration")
	mFlushErrs  = obs.Default().Counter("bh.lsm.flush.errors")
	mMemRows    = obs.Default().Gauge("bh.lsm.memtable.rows")
	mMemBytes   = obs.Default().Gauge("bh.lsm.memtable.bytes")
	mMemStalls  = obs.Default().Counter("bh.lsm.memtable.stalls")
	mWALInserts = obs.Default().Counter("bh.lsm.wal.inserts")
)

var lsmLog = obs.Logger("lsm")

// WALConfig tunes the real-time write path of one table.
type WALConfig struct {
	// MaxMemRows / MaxMemBytes trip a background flush when the active
	// memtable crosses either (defaults 8192 rows / 32 MiB).
	MaxMemRows  int
	MaxMemBytes int64
	// FlushInterval bounds how long rows sit unflushed regardless of
	// volume (default 2s).
	FlushInterval time.Duration
	// MaxSealed caps the flush backlog; writers block (ctx-cancellable)
	// when this many sealed memtables await flushing (default 2).
	MaxSealed int
	// MaxCommitRecords caps one group commit's coalescing
	// (default wal.DefaultMaxCommitRecords).
	MaxCommitRecords int
	// OnError observes background flush failures (may be nil). The
	// failed memtable stays sealed and query-visible; the flusher
	// retries on the next tick.
	OnError func(error)
}

func (c WALConfig) withDefaults() WALConfig {
	if c.MaxMemRows <= 0 {
		c.MaxMemRows = 8192
	}
	if c.MaxMemBytes <= 0 {
		c.MaxMemBytes = 32 << 20
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.MaxSealed <= 0 {
		c.MaxSealed = 2
	}
	return c
}

// walState is the runtime of an enabled WAL: the log plus the
// background flusher. It lives behind an atomic pointer on Table so
// the insert fast path avoids t.mu.
type walState struct {
	cfg WALConfig
	log *wal.Log

	flushCh chan struct{} // kick the flusher (non-blocking sends)
	stopCh  chan struct{}
	doneCh  chan struct{}

	// spaceCh is closed and replaced each time a flush retires a
	// memtable; writers blocked on backpressure wait on it. Guarded
	// by t.mu.
	spaceCh chan struct{}
}

// EnableWAL turns on the table's real-time write path: InsertCtx and
// DeleteByKeyCtx group-commit through a durable log, acknowledged
// rows become query-visible via the memtable immediately, and a
// background flusher drains the memtable into L0 segments through the
// normal ingest + auto-index path. Call CloseWAL before abandoning
// the handle.
func (t *Table) EnableWAL(cfg WALConfig) error {
	cfg = cfg.withDefaults()
	if t.walRT.Load() != nil {
		return fmt.Errorf("lsm: WAL already enabled on %q", t.opts.Name)
	}
	t.mu.RLock()
	afterLSN := t.flushedLSN
	t.mu.RUnlock()
	log, pending, err := wal.Open(t.store, t.opts.Name, t.opts.Schema, afterLSN, cfg.MaxCommitRecords)
	if err != nil {
		return err
	}
	// Open already replayed the log into segments, so pending is
	// normally empty; anything here (e.g. a WAL enabled on a table
	// handle that skipped Open) is already durable — make it visible
	// through the memtable.
	ws := &walState{
		cfg:     cfg,
		log:     log,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		spaceCh: make(chan struct{}),
	}
	t.mu.Lock()
	t.memGen++
	t.mem = wal.NewMemtable(t.opts.Schema, t.memGen)
	for _, rec := range pending {
		switch rec.Type {
		case wal.RecInsert:
			t.mem.Append(rec.Batch, rec.LSN)
		case wal.RecDelete:
			t.mem.DeleteByKey(rec.DeleteCol, rec.DeleteKeys)
			t.mem.NoteLSN(rec.LSN) // sole memtable here, so it is the active one
		}
	}
	t.mu.Unlock()
	if len(pending) > 0 {
		// Segment bitmaps for replayed deletes (memtable handled above).
		for _, rec := range pending {
			if rec.Type == wal.RecDelete {
				if _, err := t.deleteFromSegments(rec.DeleteCol, rec.DeleteKeys); err != nil {
					return err
				}
			}
		}
	}
	t.walRT.Store(ws)
	log.Start(t.walApply)
	go t.flushLoop(ws)
	return nil
}

// walApply is the group committer's post-durability hook: it makes a
// record's effects visible in the active memtable before the writer
// is acknowledged. Holding t.mu.RLock across the append pins the
// active memtable — a concurrent seal (t.mu.Lock) either waits for
// this apply or happens entirely before it, so no applied record can
// land in a sealed memtable after its flush snapshot.
func (t *Table) walApply(rec *wal.Record) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	switch rec.Type {
	case wal.RecInsert:
		t.mem.Append(rec.Batch, rec.LSN)
		mMemRows.Set(int64(t.mem.Rows()))
		mMemBytes.Set(t.mem.Bytes())
	case wal.RecDelete:
		// Memtable + segment application is done by the DeleteByKeyCtx
		// caller under dmlMu; the hook only orders the ack after
		// durability.
	}
}

// InsertCtx ingests a batch through the real-time write path when the
// WAL is enabled: the batch is group-committed to the durable log and
// becomes query-visible via the memtable the moment this returns —
// segment cutting and index building happen later in the background
// flusher. Without a WAL it falls back to the synchronous Insert
// path. Backpressure: when the flush backlog is full the call blocks
// until a flush completes or ctx fires.
func (t *Table) InsertCtx(ctx context.Context, batch *storage.RowBatch) error {
	if err := batch.Validate(); err != nil {
		return err
	}
	if batch.Len() == 0 {
		return nil
	}
	ws := t.walRT.Load()
	if ws == nil {
		return t.insertSegments(batch)
	}
	if err := t.waitForSpace(ctx, ws); err != nil {
		return err
	}
	_, err := ws.log.Append(ctx, &wal.Record{Type: wal.RecInsert, Batch: batch})
	if errors.Is(err, wal.ErrClosed) {
		return t.insertSegments(batch)
	}
	if err != nil {
		return err
	}
	mWALInserts.Inc()
	t.mu.RLock()
	over := t.mem.Rows() >= ws.cfg.MaxMemRows || t.mem.Bytes() >= ws.cfg.MaxMemBytes
	t.mu.RUnlock()
	if over {
		kickFlush(ws)
	}
	return nil
}

func kickFlush(ws *walState) {
	select {
	case ws.flushCh <- struct{}{}:
	default:
	}
}

// waitForSpace blocks while the sealed backlog is at its cap.
func (t *Table) waitForSpace(ctx context.Context, ws *walState) error {
	for {
		t.mu.RLock()
		n := len(t.sealed)
		ch := ws.spaceCh
		t.mu.RUnlock()
		if n < ws.cfg.MaxSealed {
			return nil
		}
		mMemStalls.Inc()
		kickFlush(ws)
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// flushLoop drains the memtable on size kicks and on a freshness
// timer until stopped.
func (t *Table) flushLoop(ws *walState) {
	defer close(ws.doneCh)
	ticker := time.NewTicker(ws.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ws.stopCh:
			return
		case <-ws.flushCh:
		case <-ticker.C:
		}
		if err := t.flushOnce(ws); err != nil {
			mFlushErrs.Inc()
			lsmLog.Error("flush failed", "table", t.Name(), "error", err)
			if ws.cfg.OnError != nil {
				ws.cfg.OnError(err)
			}
		}
	}
}

// flushOnce seals the active memtable and flushes every sealed
// memtable, oldest first, into L0 segments. Holding dmlMu for the
// whole run freezes sealed memtables (deletes serialize behind it),
// so each flush snapshot is exact. Per memtable: write segments
// outside all locks, then atomically swap — register segments, retire
// the memtable, advance flushedLSN — under one t.mu.Lock so queries
// see exactly one of (memtable rows | segment rows). The manifest Put
// persists the watermark before the WAL below it is truncated; a
// crash between the two just replays idempotent work.
func (t *Table) flushOnce(ws *walState) error {
	t.dmlMu.Lock()
	defer t.dmlMu.Unlock()
	start := obs.Now()
	t.mu.Lock()
	if t.mem != nil && t.mem.Rows() > 0 {
		t.sealed = append(t.sealed, t.mem)
		t.memGen++
		t.mem = wal.NewMemtable(t.opts.Schema, t.memGen)
		mMemRows.Set(0)
		mMemBytes.Set(0)
	}
	sealed := append([]*wal.Memtable(nil), t.sealed...)
	t.mu.Unlock()
	if len(sealed) == 0 {
		return nil
	}
	flushedRows := 0
	for _, m := range sealed {
		snap := m.Snapshot()
		live := snap.LiveBatch()
		var metas []*storage.SegmentMeta
		if live.Len() > 0 {
			var err error
			metas, err = t.writeBatchSegments(live)
			if err != nil {
				return err // memtable stays sealed + visible; retried next tick
			}
		}
		t.mu.Lock()
		for _, meta := range metas {
			t.segments[meta.Name] = meta
		}
		if live.Len() > 0 {
			t.updateHistogramsLocked(live)
		}
		for i, sm := range t.sealed {
			if sm == m {
				t.sealed = append(t.sealed[:i], t.sealed[i+1:]...)
				break
			}
		}
		// Backlog space just freed — wake writers blocked on
		// backpressure now rather than after the whole run, so a later
		// memtable's flush error can't strand them behind space that
		// already exists.
		close(ws.spaceCh)
		ws.spaceCh = make(chan struct{})
		if snap.MaxLSN > t.flushedLSN {
			t.flushedLSN = snap.MaxLSN
		}
		watermark := t.flushedLSN
		t.mu.Unlock()
		if err := t.saveManifest(); err != nil {
			return err
		}
		// Skip truncation while a backup pins the tail. The flush itself
		// proceeds — only log reclamation is deferred; the unpin runs a
		// catch-up truncate. (A pin landing between this check and the
		// delete is still safe: truncation only removes blobs at or
		// below a watermark already durable in the manifest, which any
		// subsequent backup's manifest read will reflect.)
		if !t.walTruncatePinned() {
			if err := ws.log.TruncateBelow(watermark); err != nil {
				return err
			}
		}
		flushedRows += live.Len()
	}
	mFlushRuns.Inc()
	mFlushRows.Add(int64(flushedRows))
	dur := time.Since(start)
	mFlushDur.Observe(dur)
	lsmLog.Info("memtable flush", "table", t.Name(), "rows", flushedRows,
		"memtables", len(sealed), "duration_ms", float64(dur.Microseconds())/1000)
	return nil
}

// CloseWAL drains and disables the real-time write path: in-flight
// appends commit, the flusher stops, and one final flush moves every
// memtable row into segments (after which the WAL directory is
// empty). The table remains usable on the synchronous paths.
func (t *Table) CloseWAL() error {
	ws := t.walRT.Swap(nil)
	if ws == nil {
		return nil
	}
	ws.log.Close() // drains the commit queue; applies land in the memtable
	close(ws.stopCh)
	<-ws.doneCh
	return t.flushOnce(ws)
}

// FlushWAL forces a synchronous flush of the memtable (tests and
// admin tooling).
func (t *Table) FlushWAL() error {
	ws := t.walRT.Load()
	if ws == nil {
		return nil
	}
	return t.flushOnce(ws)
}

// WALEnabled reports whether the real-time write path is active.
func (t *Table) WALEnabled() bool { return t.walRT.Load() != nil }

// PinWALTruncate suspends WAL truncation until the returned release
// func runs (idempotent). Backups hold a pin while copying the WAL
// tail so a concurrent flush can't delete tail blobs mid-copy; flushes
// themselves keep running, only log reclamation is deferred. Releasing
// the last pin runs a best-effort catch-up truncation.
func (t *Table) PinWALTruncate() func() {
	t.mu.Lock()
	t.walPins++
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.walPins--
			stillPinned := t.walPins > 0
			watermark := t.flushedLSN
			t.mu.Unlock()
			if stillPinned {
				return
			}
			if ws := t.walRT.Load(); ws != nil {
				if err := ws.log.TruncateBelow(watermark); err != nil {
					lsmLog.Warn("catch-up WAL truncation failed",
						"table", t.Name(), "error", err)
				}
			}
		})
	}
}

// walTruncatePinned reports whether a backup currently pins the tail.
func (t *Table) walTruncatePinned() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.walPins > 0
}

// FlushedLSN returns the recovery watermark (tests).
func (t *Table) FlushedLSN() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.flushedLSN
}

// MemRows returns the rows currently buffered in memtables (including
// sealed ones, excluding delete marks).
func (t *Table) MemRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	if t.mem != nil {
		n += t.mem.Rows()
	}
	for _, m := range t.sealed {
		n += m.Rows()
	}
	return n
}

// QueryView is one query's consistent snapshot of the table: the
// segment catalog plus frozen memtable snapshots, captured under a
// single lock so a concurrent flush can never show the same row twice
// (memtable and new segment) or not at all.
type QueryView struct {
	Segments []*storage.SegmentMeta
	Mem      []*wal.MemSnapshot
}

// View captures a consistent QueryView.
func (t *Table) View() QueryView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v := QueryView{Segments: make([]*storage.SegmentMeta, 0, len(t.segments))}
	for _, m := range t.segments {
		v.Segments = append(v.Segments, m)
	}
	for _, m := range t.sealed {
		if snap := m.Snapshot(); snap.Rows() > 0 {
			v.Mem = append(v.Mem, snap)
		}
	}
	if t.mem != nil {
		if snap := t.mem.Snapshot(); snap.Rows() > 0 {
			v.Mem = append(v.Mem, snap)
		}
	}
	return v
}
