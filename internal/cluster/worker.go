// Package cluster implements the disaggregated compute layer of
// BlendHouse (paper §II): virtual warehouses (VWs) of stateless
// workers over shared remote storage, segment scheduling with
// multi-probe consistent hashing, scheduler-side segment pruning
// (scalar and semantic), the vector-search-serving RPC that papers
// over index-cache misses during scaling, cache-aware preload, and
// query-level fault tolerance.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"blendhouse/internal/bitset"
	"blendhouse/internal/cache"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
	"blendhouse/internal/vec"
)

// VW-wide search counters (SHOW METRICS / the -debug-addr endpoint).
// Per-worker atomic counters stay on the Worker for the benchmarks;
// these aggregate across all workers of the process.
var (
	mLocalSearches  = obs.Default().Counter("bh.vw.search.local")
	mServedSearches = obs.Default().Counter("bh.vw.search.served")
	mBruteSearches  = obs.Default().Counter("bh.vw.search.brute_force")
)

// Worker is one stateless compute node: it owns only caches; all
// durable state lives in the shared store. Killing a worker loses
// nothing but cache warmth.
type Worker struct {
	ID    string
	cache *cache.IndexCache
	vw    *VW
	// slots bounds concurrent segment scans — the worker's compute
	// capacity. Scans block here when the worker is saturated, which
	// is how adding workers raises VW throughput.
	slots chan struct{}

	alive atomic.Bool

	// Counters for the benchmarks.
	LocalSearches  atomic.Int64
	ServedSearches atomic.Int64 // searches executed on behalf of another worker
	BruteSearches  atomic.Int64
}

// newWorker wires a worker with its own local-disk tier (an isolated
// MemStore standing in for the node's SSD) over the VW's shared
// remote store.
func newWorker(id string, vw *VW, cfg cache.Config, slots int) *Worker {
	w := &Worker{
		ID:    id,
		vw:    vw,
		cache: cache.NewIndexCache(cfg, storage.NewMemStore(), vw.remote),
		slots: make(chan struct{}, slots),
	}
	w.alive.Store(true)
	return w
}

// sleepCtx sleeps for d unless ctx fires first (nil ctx = plain
// sleep). All simulated service times go through here so a cancelled
// query releases worker capacity promptly.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire blocks until the worker has a free compute slot (or ctx
// fires) and charges the simulated per-scan service time, if
// configured.
func (w *Worker) acquire(ctx context.Context) (func(), error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		select {
		case w.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else {
		w.slots <- struct{}{}
	}
	if err := sleepCtx(ctx, w.vw.cfg.SimulatedScanCost); err != nil {
		<-w.slots
		return nil, err
	}
	return func() { <-w.slots }, nil
}

// chargePost charges the simulated per-segment post-processing time
// on this worker's capacity (see VWConfig.SimulatedPostCost).
func (w *Worker) chargePost(ctx context.Context) error {
	c := w.vw.cfg.SimulatedPostCost
	if c <= 0 {
		return nil
	}
	if ctx != nil {
		select {
		case w.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	} else {
		w.slots <- struct{}{}
	}
	err := sleepCtx(ctx, c)
	<-w.slots
	return err
}

// Alive reports whether the worker is serving.
func (w *Worker) Alive() bool { return w.alive.Load() }

// Fail simulates a crash: the worker stops serving and loses its
// in-memory cache (the local disk tier survives, as a restarted pod's
// volume would).
func (w *Worker) Fail() {
	w.alive.Store(false)
	w.cache.PurgeMem()
}

// Recover brings a failed worker back (cold in-memory cache).
func (w *Worker) Recover() { w.alive.Store(true) }

// CacheStats exposes the hierarchical cache counters.
func (w *Worker) CacheStats() cache.HierStats { return w.cache.Stats() }

// CacheStats aggregates the hierarchical index-cache counters across
// all live and dead workers — the VW-level view that SHOW METRICS and
// the debug endpoint report.
func (vw *VW) CacheStats() cache.HierStats {
	vw.mu.RLock()
	defer vw.mu.RUnlock()
	var agg cache.HierStats
	for _, w := range vw.workers {
		s := w.cache.Stats()
		agg.MemHits += s.MemHits
		agg.DiskHits += s.DiskHits
		agg.RemoteLoads += s.RemoteLoads
		agg.Failures += s.Failures
	}
	return agg
}

// HasIndexInMem reports whether the segment's index is resident —
// the scheduler and the serving path consult this without triggering
// a load.
func (w *Worker) HasIndexInMem(table *lsm.Table, seg string) bool {
	return w.cache.ContainsMem(table.IndexKeyOf(seg))
}

// SearchSegment runs an ANN scan over one segment on this worker,
// loading the index through the hierarchical cache as needed. filter
// is offset-indexed over the segment's rows; deleted rows must
// already be cleared in it (or pass nil and handle deletes upstream).
// ctx bounds the slot wait, the simulated service time and the index
// load (nil = unbounded).
func (w *Worker) SearchSegment(ctx context.Context, table *lsm.Table, meta *storage.SegmentMeta, q []float32, k int, p index.SearchParams, filter *bitset.Bitset) ([]index.Candidate, error) {
	return w.searchSegment(ctx, table, meta, q, k, p, filter, nil)
}

// searchSegment is SearchSegment with an optional index-cache trace
// tally (nil = untraced).
func (w *Worker) searchSegment(ctx context.Context, table *lsm.Table, meta *storage.SegmentMeta, q []float32, k int, p index.SearchParams, filter *bitset.Bitset, tally *obs.CacheTally) ([]index.Candidate, error) {
	if !w.Alive() {
		return nil, fmt.Errorf("cluster: worker %s is down", w.ID)
	}
	release, err := w.acquire(ctx)
	if err != nil {
		return nil, err
	}
	key := table.IndexKeyOf(meta.Name)
	v, err := w.cache.GetTally(ctx, key, table.IndexLoaderFor(meta), tally)
	if err != nil {
		release() // BruteForceSearch acquires its own slot
		if storage.IsNotFound(err) {
			// Segment has no index (e.g. table without INDEX clause):
			// brute-force fallback.
			return w.BruteForceSearch(ctx, table, meta, q, k, filter)
		}
		return nil, err
	}
	defer release()
	ix := v.(index.Index)
	w.LocalSearches.Add(1)
	mLocalSearches.Inc()
	return ix.SearchWithFilter(q, k, filter, p)
}

// BruteForceSearch is the fallback of paper §II-D: read the vector
// column from (remote) storage and compute exact distances. This is
// what vector search serving exists to avoid.
func (w *Worker) BruteForceSearch(ctx context.Context, table *lsm.Table, meta *storage.SegmentMeta, q []float32, k int, filter *bitset.Bitset) ([]index.Candidate, error) {
	if !w.Alive() {
		return nil, fmt.Errorf("cluster: worker %s is down", w.ID)
	}
	release, err := w.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	w.BruteSearches.Add(1)
	mBruteSearches.Inc()
	rd := &storage.SegmentReader{Store: table.Store(), Meta: meta, Schema: table.Schema()}
	vcolName := table.Options().IndexColumn
	if vcolName == "" {
		vcolName = table.Schema().VectorColumn().Name
	}
	col, err := rd.ReadColumnCtx(ctx, vcolName)
	if err != nil {
		return nil, fmt.Errorf("cluster: brute-force read of %s: %w", meta.Name, err)
	}
	metric := table.Options().IndexParams.Metric
	t := index.NewTopK(k)
	for r := 0; r < col.Len(); r++ {
		if filter != nil && !filter.Test(r) {
			continue
		}
		t.Push(index.Candidate{ID: int64(r), Dist: vec.Distance(metric, q, col.Vector(r))})
	}
	return t.Results(), nil
}

// RangeSegment runs a range scan over one segment.
func (w *Worker) RangeSegment(ctx context.Context, table *lsm.Table, meta *storage.SegmentMeta, q []float32, radius float32, p index.SearchParams, filter *bitset.Bitset) ([]index.Candidate, error) {
	if !w.Alive() {
		return nil, fmt.Errorf("cluster: worker %s is down", w.ID)
	}
	release, err := w.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	key := table.IndexKeyOf(meta.Name)
	v, err := w.cache.GetTally(ctx, key, table.IndexLoaderFor(meta), nil)
	if err != nil {
		return nil, err
	}
	w.LocalSearches.Add(1)
	return v.(index.Index).SearchWithRange(q, radius, filter, p)
}

// OpenIterator opens an incremental search over one segment's index.
func (w *Worker) OpenIterator(ctx context.Context, table *lsm.Table, meta *storage.SegmentMeta, q []float32, initialK int, p index.SearchParams) (index.Iterator, error) {
	if !w.Alive() {
		return nil, fmt.Errorf("cluster: worker %s is down", w.ID)
	}
	key := table.IndexKeyOf(meta.Name)
	v, err := w.cache.GetTally(ctx, key, table.IndexLoaderFor(meta), nil)
	if err != nil {
		return nil, err
	}
	w.LocalSearches.Add(1)
	return index.OpenIterator(v.(index.Index), q, initialK, p)
}

// Preload pulls the given segments' indexes through the cache tiers
// (paper §II-D "Cache-aware vector index preload"). Best-effort and
// unbounded: preload runs ahead of queries, not inside one.
func (w *Worker) Preload(table *lsm.Table, metas []*storage.SegmentMeta) []error {
	var errs []error
	for _, m := range metas {
		key := table.IndexKeyOf(m.Name)
		if _, err := w.cache.Get(key, table.IndexLoaderFor(m)); err != nil {
			errs = append(errs, fmt.Errorf("preload %s: %w", m.Name, err))
		}
	}
	return errs
}

// DropIndexFromMem evicts one segment's index from memory (test and
// experiment hook for forcing cache misses).
func (w *Worker) DropIndexFromMem(table *lsm.Table, seg string) {
	w.cache.DropMem(table.IndexKeyOf(seg))
}
