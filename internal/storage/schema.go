package storage

import (
	"fmt"
	"strconv"
)

// ColumnType enumerates the column types BlendHouse tables support —
// the set the paper's experiments need (ints, floats, strings,
// datetimes-as-millis, and vector embeddings).
type ColumnType uint8

// Column types. DateTime values are stored as Unix milliseconds in an
// Int64-shaped column but keep their own type tag for SQL semantics.
const (
	Int64Type ColumnType = iota
	Float64Type
	StringType
	DateTimeType
	VectorType
)

// String returns the SQL name of the type.
func (t ColumnType) String() string {
	switch t {
	case Int64Type:
		return "UInt64"
	case Float64Type:
		return "Float64"
	case StringType:
		return "String"
	case DateTimeType:
		return "DateTime"
	case VectorType:
		return "Array(Float32)"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// ParseColumnType maps SQL type names to ColumnType.
func ParseColumnType(s string) (ColumnType, error) {
	switch s {
	case "UInt64", "Int64", "UInt32", "Int32":
		return Int64Type, nil
	case "Float64", "Float32":
		return Float64Type, nil
	case "String":
		return StringType, nil
	case "DateTime":
		return DateTimeType, nil
	case "Array(Float32)", "Array(Float64)":
		return VectorType, nil
	default:
		return 0, fmt.Errorf("storage: unknown column type %q", s)
	}
}

// ColumnDef declares one column. Dim is only meaningful for
// VectorType.
type ColumnDef struct {
	Name string     `json:"name"`
	Type ColumnType `json:"type"`
	Dim  int        `json:"dim,omitempty"`
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Columns []ColumnDef `json:"columns"`
	// OrderBy is the sorting-key column (the dialect's ORDER BY in
	// CREATE TABLE); empty means insertion order.
	OrderBy string `json:"order_by,omitempty"`
}

// Col returns the position and definition of a named column, or
// (-1, nil) when absent.
func (s *Schema) Col(name string) (int, *ColumnDef) {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return i, &s.Columns[i]
		}
	}
	return -1, nil
}

// VectorColumn returns the first vector column, or nil.
func (s *Schema) VectorColumn() *ColumnDef {
	for i := range s.Columns {
		if s.Columns[i].Type == VectorType {
			return &s.Columns[i]
		}
	}
	return nil
}

// Validate checks structural invariants: nonempty, unique names,
// vector columns carry a dimension.
func (s *Schema) Validate() error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("storage: schema has no columns")
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("storage: unnamed column")
		}
		if seen[c.Name] {
			return fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if c.Type == VectorType && c.Dim <= 0 {
			return fmt.Errorf("storage: vector column %q missing dimension", c.Name)
		}
	}
	if s.OrderBy != "" {
		if i, _ := s.Col(s.OrderBy); i < 0 {
			return fmt.Errorf("storage: ORDER BY column %q not in schema", s.OrderBy)
		}
	}
	return nil
}

// ColumnData holds one column's values for a batch of rows. Exactly
// one of the value slices is populated, matching Def.Type (DateTime
// shares Ints).
type ColumnData struct {
	Def    ColumnDef
	Ints   []int64
	Floats []float64
	Strs   []string
	Vecs   []float32 // rows × Def.Dim
}

// NewColumnData returns an empty column buffer for def.
func NewColumnData(def ColumnDef) *ColumnData {
	return &ColumnData{Def: def}
}

// Len returns the number of rows stored.
func (c *ColumnData) Len() int {
	switch c.Def.Type {
	case Int64Type, DateTimeType:
		return len(c.Ints)
	case Float64Type:
		return len(c.Floats)
	case StringType:
		return len(c.Strs)
	case VectorType:
		if c.Def.Dim == 0 {
			return 0
		}
		return len(c.Vecs) / c.Def.Dim
	}
	return 0
}

// AppendRow copies row i of src onto c. The defs must match.
func (c *ColumnData) AppendRow(src *ColumnData, i int) {
	switch c.Def.Type {
	case Int64Type, DateTimeType:
		c.Ints = append(c.Ints, src.Ints[i])
	case Float64Type:
		c.Floats = append(c.Floats, src.Floats[i])
	case StringType:
		c.Strs = append(c.Strs, src.Strs[i])
	case VectorType:
		d := c.Def.Dim
		c.Vecs = append(c.Vecs, src.Vecs[i*d:(i+1)*d]...)
	}
}

// Vector returns row i of a vector column as a subslice.
func (c *ColumnData) Vector(i int) []float32 {
	d := c.Def.Dim
	return c.Vecs[i*d : (i+1)*d]
}

// ValueString renders row i for display and partition-key encoding.
func (c *ColumnData) ValueString(i int) string {
	switch c.Def.Type {
	case Int64Type, DateTimeType:
		return strconv.FormatInt(c.Ints[i], 10)
	case Float64Type:
		return strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
	case StringType:
		return c.Strs[i]
	case VectorType:
		return fmt.Sprintf("<vector dim=%d>", c.Def.Dim)
	}
	return ""
}

// RowBatch is a set of rows in columnar form — the unit flowing
// through ingestion and the executor.
type RowBatch struct {
	Schema *Schema
	Cols   []*ColumnData
}

// NewRowBatch allocates empty column buffers for the schema.
func NewRowBatch(schema *Schema) *RowBatch {
	cols := make([]*ColumnData, len(schema.Columns))
	for i, def := range schema.Columns {
		cols[i] = NewColumnData(def)
	}
	return &RowBatch{Schema: schema, Cols: cols}
}

// Len returns the row count (0 for an empty batch).
func (b *RowBatch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Col returns the column buffer by name, or nil.
func (b *RowBatch) Col(name string) *ColumnData {
	i, _ := b.Schema.Col(name)
	if i < 0 {
		return nil
	}
	return b.Cols[i]
}

// AppendRow copies row i of src (same schema) onto b.
func (b *RowBatch) AppendRow(src *RowBatch, i int) {
	for ci := range b.Cols {
		b.Cols[ci].AppendRow(src.Cols[ci], i)
	}
}

// Validate checks all columns have equal length and match the schema.
func (b *RowBatch) Validate() error {
	if len(b.Cols) != len(b.Schema.Columns) {
		return fmt.Errorf("storage: batch has %d columns, schema %d", len(b.Cols), len(b.Schema.Columns))
	}
	n := -1
	for i, c := range b.Cols {
		if c.Def.Name != b.Schema.Columns[i].Name {
			return fmt.Errorf("storage: column %d is %q, schema says %q", i, c.Def.Name, b.Schema.Columns[i].Name)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("storage: column %q has %d rows, want %d", c.Def.Name, c.Len(), n)
		}
	}
	return nil
}
