package cluster

import (
	"context"
	"fmt"

	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

// MirroredVW implements paper §II-E's "multiple VW replicas for
// critical workloads": two (or more) independently provisioned virtual
// warehouses over the same shared storage, where a query failing on
// the primary — all its workers down, mid-scale chaos, network
// partition — transparently retries on the next replica. Because
// workers are stateless and all durable state lives in the shared
// store, replicas need no coordination beyond both registering the
// tables they serve.
type MirroredVW struct {
	replicas []*VW
}

// NewMirroredVW wires the replicas in priority order. At least one is
// required.
func NewMirroredVW(replicas ...*VW) (*MirroredVW, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: mirrored VW needs at least one replica")
	}
	return &MirroredVW{replicas: replicas}, nil
}

// Replicas returns the underlying VWs in priority order.
func (m *MirroredVW) Replicas() []*VW { return m.replicas }

// RegisterTable registers the table with every replica.
func (m *MirroredVW) RegisterTable(t *lsm.Table) {
	for _, vw := range m.replicas {
		vw.RegisterTable(t)
	}
}

// Preload warms every replica (each per its own ring).
func (m *MirroredVW) Preload(t *lsm.Table) []error {
	var errs []error
	for _, vw := range m.replicas {
		errs = append(errs, vw.Preload(t)...)
	}
	return errs
}

// Search tries each replica in order, returning the first success.
// Only genuine execution failures fall through; an empty result is a
// valid answer and is returned as-is. A cancelled or timed-out ctx
// stops the fail-over chain — later replicas would just re-observe
// the same dead context.
func (m *MirroredVW) Search(ctx context.Context, table *lsm.Table, metas []*storage.SegmentMeta, q []float32, k int, opts SearchOptions) ([]SegmentCandidate, error) {
	var firstErr error
	for _, vw := range m.replicas {
		res, err := vw.Search(ctx, table, metas, q, k, opts)
		if err == nil {
			return res, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("cluster: all %d VW replicas failed: %w", len(m.replicas), firstErr)
}
