package storage

import (
	"context"
	"sync/atomic"
	"time"
)

// IOTally accumulates the blob reads charged to one query: how many
// read operations, how many bytes, and the summed wall time spent in
// the store (across concurrent segment scans, so it can exceed the
// query's elapsed time). The executor attaches one to the query context
// when tracing and materializes it as the trace's "storage" span; the
// SegmentReader read paths feed it — exactly one layer, so reads
// retried inside RetryStore count once. All methods are
// nil-receiver-safe.
type IOTally struct {
	reads atomic.Int64
	bytes atomic.Int64
	nanos atomic.Int64
}

// Add records one read of n bytes taking d.
func (t *IOTally) Add(n int64, d time.Duration) {
	if t == nil {
		return
	}
	t.reads.Add(1)
	t.bytes.Add(n)
	t.nanos.Add(d.Nanoseconds())
}

// Values reads the tally (zeros on nil).
func (t *IOTally) Values() (reads, bytes int64, dur time.Duration) {
	if t == nil {
		return 0, 0, 0
	}
	return t.reads.Load(), t.bytes.Load(), time.Duration(t.nanos.Load())
}

type ioTallyKey struct{}

// WithIOTally attaches a per-query storage-read tally to ctx.
func WithIOTally(ctx context.Context, t *IOTally) context.Context {
	return context.WithValue(ctx, ioTallyKey{}, t)
}

// IOTallyFrom extracts the storage-read tally from ctx (nil when
// absent; nil is safe to use).
func IOTallyFrom(ctx context.Context) *IOTally {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ioTallyKey{}).(*IOTally)
	return t
}

// tallyGet is GetCtx plus per-query IO accounting. When no tally rides
// the context (untraced queries) it adds nothing but the ctx lookup —
// no timestamps, no allocations.
func tallyGet(ctx context.Context, s BlobStore, key string) ([]byte, error) {
	t := IOTallyFrom(ctx)
	if t == nil {
		return GetCtx(ctx, s, key)
	}
	start := time.Now()
	b, err := GetCtx(ctx, s, key)
	t.Add(int64(len(b)), time.Since(start))
	return b, err
}

// tallyGetRange is GetRangeCtx plus per-query IO accounting.
func tallyGetRange(ctx context.Context, s BlobStore, key string, off, length int64) ([]byte, error) {
	t := IOTallyFrom(ctx)
	if t == nil {
		return GetRangeCtx(ctx, s, key, off, length)
	}
	start := time.Now()
	b, err := GetRangeCtx(ctx, s, key, off, length)
	t.Add(int64(len(b)), time.Since(start))
	return b, err
}
