// Storage-tier and backup plumbing for the blendhouse command:
// the shared -tier-*/-encrypt-key/-backup-key flags (shell and serve
// modes) and the offline `blendhouse backup` / `blendhouse restore`
// subcommands, which operate directly on the blob directories without
// a running server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"blendhouse/internal/blobtier"
	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

// storeFlags holds the storage-stack flags shared by the shell and
// serve modes: the tiered blob cache (off by default), at-rest
// encryption of the data directory, and the default backup key.
type storeFlags struct {
	tierMem    int64
	tierDisk   int64
	tierDir    string
	encryptKey string
	backupKey  string
}

// registerStoreFlags installs the shared storage flags on fs and
// returns the struct their values land in.
func registerStoreFlags(fs *flag.FlagSet) *storeFlags {
	sf := &storeFlags{}
	fs.Int64Var(&sf.tierMem, "tier-mem", 0, "tiered blob cache: in-memory budget in bytes (0 = cache off)")
	fs.Int64Var(&sf.tierDisk, "tier-disk", 0, "tiered blob cache: local-disk spill budget in bytes (0 = no disk tier)")
	fs.StringVar(&sf.tierDir, "tier-dir", "", "tiered blob cache: spill directory (default: <data>.tiercache, sibling of the data dir)")
	fs.StringVar(&sf.encryptKey, "encrypt-key", os.Getenv("BH_ENCRYPT_KEY"), "encrypt all blobs in the data dir with this secret (AES-GCM; also $BH_ENCRYPT_KEY)")
	fs.StringVar(&sf.backupKey, "backup-key", os.Getenv("BH_BACKUP_KEY"), "default encryption secret for BACKUP/RESTORE destinations (statement WITH KEY overrides; also $BH_BACKUP_KEY)")
	return sf
}

// openDataStore opens the FSStore for dataDir, wrapped in the
// encrypting store when -encrypt-key is set.
func (sf *storeFlags) openDataStore(dataDir string) (storage.BlobStore, error) {
	store, err := storage.NewFSStore(dataDir)
	if err != nil {
		return nil, err
	}
	if sf.encryptKey == "" {
		return store, nil
	}
	return blobtier.NewEncrypting(store, blobtier.KeyFromString(sf.encryptKey))
}

// tierConfig translates the -tier-* flags into the engine's tier
// config (nil = no tier layer). The disk spill directory defaults to
// a sibling of the data dir — never inside it, so cache files don't
// pollute the engine's own blob listings.
func (sf *storeFlags) tierConfig(dataDir string) *blobtier.Config {
	if sf.tierMem <= 0 && sf.tierDisk <= 0 {
		return nil
	}
	dir := sf.tierDir
	if dir == "" && sf.tierDisk > 0 {
		dir = strings.TrimRight(dataDir, "/") + ".tiercache"
	}
	return &blobtier.Config{MemBytes: sf.tierMem, DiskBytes: sf.tierDisk, DiskDir: dir}
}

// runBackup implements `blendhouse backup -data DIR -table T -to DEST
// [-key SECRET] [-encrypt-key SECRET]`: an offline snapshot taken
// directly from the blob directory. For a table served by a live
// process, prefer the SQL statement (BACKUP TABLE t TO '...'), which
// pins WAL truncation on the serving engine for a consistent cut.
func runBackup(args []string) {
	fs := flag.NewFlagSet("blendhouse backup", flag.ExitOnError)
	var (
		dataDir    = fs.String("data", "./bhdata", "blob store directory to back up from")
		table      = fs.String("table", "", "table to back up (required)")
		to         = fs.String("to", "", "destination directory for the backup (required)")
		key        = fs.String("key", os.Getenv("BH_BACKUP_KEY"), "encrypt the backup with this secret (also $BH_BACKUP_KEY)")
		encryptKey = fs.String("encrypt-key", os.Getenv("BH_ENCRYPT_KEY"), "data dir at-rest encryption secret, if the data dir is encrypted (also $BH_ENCRYPT_KEY)")
	)
	fs.Parse(args)
	if *table == "" || *to == "" {
		fatal(errors.New("backup: -table and -to are required"))
	}
	src, err := (&storeFlags{encryptKey: *encryptKey}).openDataStore(*dataDir)
	if err != nil {
		fatal(err)
	}
	dst, err := openBackupDest(*to, *key)
	if err != nil {
		fatal(err)
	}
	bm, err := blobtier.BackupTable(context.Background(), src, *table, nil, dst)
	if err != nil {
		fatal(fmt.Errorf("backup: %w", err))
	}
	fmt.Printf("backed up table %s to %s (%d blobs, %d bytes, snapshot_lsn=%d)\n",
		*table, *to, len(bm.Blobs), bm.Bytes, bm.SnapshotLSN)
}

// runRestore implements `blendhouse restore -data DIR -table T -from
// SRC [-key SECRET] [-encrypt-key SECRET]`: verifies and copies the
// backup into the data directory, then opens the table so the backed
// up WAL tail replays past the snapshot watermark (point-in-time
// recovery) before any server starts.
func runRestore(args []string) {
	fs := flag.NewFlagSet("blendhouse restore", flag.ExitOnError)
	var (
		dataDir    = fs.String("data", "./bhdata", "blob store directory to restore into")
		table      = fs.String("table", "", "table to restore (required)")
		from       = fs.String("from", "", "backup directory to restore from (required)")
		key        = fs.String("key", os.Getenv("BH_BACKUP_KEY"), "backup decryption secret (also $BH_BACKUP_KEY)")
		encryptKey = fs.String("encrypt-key", os.Getenv("BH_ENCRYPT_KEY"), "data dir at-rest encryption secret (also $BH_ENCRYPT_KEY)")
	)
	fs.Parse(args)
	if *table == "" || *from == "" {
		fatal(errors.New("restore: -table and -from are required"))
	}
	src, err := openBackupDest(*from, *key)
	if err != nil {
		fatal(err)
	}
	dst, err := (&storeFlags{encryptKey: *encryptKey}).openDataStore(*dataDir)
	if err != nil {
		fatal(err)
	}
	bm, err := blobtier.RestoreTable(context.Background(), src, *table, dst)
	if err != nil {
		fatal(fmt.Errorf("restore: %w", err))
	}
	t, err := lsm.Open(dst, *table)
	if err != nil {
		fatal(fmt.Errorf("restore: opening restored table: %w", err))
	}
	replayed := t.FlushedLSN() - bm.SnapshotLSN
	fmt.Printf("restored table %s from %s (%d blobs, %d bytes, PITR replayed %d WAL records past lsn %d)\n",
		*table, *from, len(bm.Blobs), bm.Bytes, replayed, bm.SnapshotLSN)
}

// openBackupDest opens a backup destination/source directory, wrapped
// in the encrypting store when a key is given.
func openBackupDest(path, key string) (storage.BlobStore, error) {
	store, err := storage.NewFSStore(path)
	if err != nil {
		return nil, err
	}
	if key == "" {
		return store, nil
	}
	return blobtier.NewEncrypting(store, blobtier.KeyFromString(key))
}
