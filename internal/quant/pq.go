package quant

import (
	"encoding/binary"
	"fmt"
	"math"

	"blendhouse/internal/kmeans"
	"blendhouse/internal/vec"
)

// ProductQuantizer splits a dim-dimensional vector into M subvectors
// and quantizes each against its own codebook of 2^Nbits centroids
// (Jégou et al., "Product quantization for nearest neighbor search").
//
// Queries use asymmetric distance computation (ADC): a per-query
// lookup table of size M×2^Nbits is built once, after which each
// encoded vector's approximate distance is M table lookups — the c_c
// cost of the paper's Equations 2–3.
//
// Nbits=8 gives classic PQ (one byte per subvector, IVFPQ); Nbits=4
// gives the "fast scan" layout (two subvectors per byte, IVFPQFS) with
// a 16-entry table per subquantizer that faiss evaluates with SIMD
// shuffles — here we keep the compact codes and small tables, which is
// the part that changes memory and cache behaviour.
type ProductQuantizer struct {
	Dim   int
	M     int       // number of subquantizers; Dim % M == 0
	Nbits int       // 4 or 8
	Ksub  int       // 1 << Nbits
	Dsub  int       // Dim / M
	Cents []float32 // M * Ksub * Dsub, codebooks back to back
}

// TrainPQ learns codebooks from the rows of data via per-subspace
// k-means. seed makes training deterministic.
func TrainPQ(data []float32, dim, m, nbits int, seed int64) (*ProductQuantizer, error) {
	if dim <= 0 || m <= 0 || dim%m != 0 {
		return nil, fmt.Errorf("quant: dim %d not divisible by M %d", dim, m)
	}
	if nbits != 4 && nbits != 8 {
		return nil, fmt.Errorf("quant: Nbits must be 4 or 8, got %d", nbits)
	}
	if len(data) == 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("quant: training data length %d not a multiple of dim %d", len(data), dim)
	}
	pq := &ProductQuantizer{Dim: dim, M: m, Nbits: nbits, Ksub: 1 << nbits, Dsub: dim / m}
	pq.Cents = make([]float32, m*pq.Ksub*pq.Dsub)
	rows := len(data) / dim
	sub := vec.NewMatrix(rows, pq.Dsub)
	for mi := 0; mi < m; mi++ {
		for r := 0; r < rows; r++ {
			copy(sub.Row(r), data[r*dim+mi*pq.Dsub:r*dim+(mi+1)*pq.Dsub])
		}
		res, err := kmeans.Train(sub, kmeans.Config{K: pq.Ksub, MaxIters: 12, Seed: seed + int64(mi)})
		if err != nil {
			return nil, fmt.Errorf("quant: training subquantizer %d: %w", mi, err)
		}
		copy(pq.Cents[mi*pq.Ksub*pq.Dsub:], res.Centroids.Data)
	}
	return pq, nil
}

// centroid returns codebook entry k of subquantizer mi.
func (pq *ProductQuantizer) centroid(mi, k int) []float32 {
	off := (mi*pq.Ksub + k) * pq.Dsub
	return pq.Cents[off : off+pq.Dsub]
}

// CodeSize returns the number of bytes per encoded vector.
func (pq *ProductQuantizer) CodeSize() int {
	if pq.Nbits == 4 {
		return (pq.M + 1) / 2
	}
	return pq.M
}

// Encode quantizes v into code (CodeSize() bytes).
func (pq *ProductQuantizer) Encode(v []float32, code []byte) {
	dists := make([]float32, pq.Ksub)
	for mi := 0; mi < pq.M; mi++ {
		sub := v[mi*pq.Dsub : (mi+1)*pq.Dsub]
		vec.DistancesTo(vec.L2, sub, pq.Cents[mi*pq.Ksub*pq.Dsub:(mi+1)*pq.Ksub*pq.Dsub], pq.Dsub, dists)
		best := vec.ArgMin(dists)
		if pq.Nbits == 8 {
			code[mi] = byte(best)
		} else {
			if mi%2 == 0 {
				code[mi/2] = byte(best)
			} else {
				code[mi/2] |= byte(best) << 4
			}
		}
	}
}

// Decode reconstructs an approximation of the original vector.
func (pq *ProductQuantizer) Decode(code []byte, out []float32) {
	for mi := 0; mi < pq.M; mi++ {
		copy(out[mi*pq.Dsub:(mi+1)*pq.Dsub], pq.centroid(mi, pq.codeAt(code, mi)))
	}
}

func (pq *ProductQuantizer) codeAt(code []byte, mi int) int {
	if pq.Nbits == 8 {
		return int(code[mi])
	}
	b := code[mi/2]
	if mi%2 == 0 {
		return int(b & 0x0f)
	}
	return int(b >> 4)
}

// ADCTable is a per-query lookup table: Tab[mi*Ksub+k] is the partial
// squared distance between the query's mi-th subvector and centroid k.
type ADCTable struct {
	pq  *ProductQuantizer
	Tab []float32
}

// BuildADC computes the lookup table for query q under the given
// metric. For InnerProduct the table stores negative partial dot
// products so that, as everywhere else, smaller is closer.
func (pq *ProductQuantizer) BuildADC(m vec.Metric, q []float32) *ADCTable {
	t := &ADCTable{pq: pq, Tab: make([]float32, pq.M*pq.Ksub)}
	for mi := 0; mi < pq.M; mi++ {
		sub := q[mi*pq.Dsub : (mi+1)*pq.Dsub]
		// Each subquantizer's Ksub centroids are contiguous, so one
		// blocked kernel call fills the whole table row.
		cents := pq.Cents[mi*pq.Ksub*pq.Dsub : (mi+1)*pq.Ksub*pq.Dsub]
		row := t.Tab[mi*pq.Ksub : (mi+1)*pq.Ksub]
		switch m {
		case vec.InnerProduct:
			vec.DotBatch(sub, cents, pq.Dsub, row)
			for k := range row {
				row[k] = -row[k]
			}
		default: // L2 and Cosine both scan on L2 of (normalized) vectors
			vec.L2SquaredBatch(sub, cents, pq.Dsub, row)
		}
	}
	return t
}

// Distance returns the ADC approximate distance for one encoded
// vector: M table lookups.
func (t *ADCTable) Distance(code []byte) float32 {
	pq := t.pq
	var s float32
	if pq.Nbits == 8 {
		for mi := 0; mi < pq.M; mi++ {
			s += t.Tab[mi*pq.Ksub+int(code[mi])]
		}
		return s
	}
	for mi := 0; mi < pq.M; mi += 2 {
		b := code[mi/2]
		s += t.Tab[mi*pq.Ksub+int(b&0x0f)]
		if mi+1 < pq.M {
			s += t.Tab[(mi+1)*pq.Ksub+int(b>>4)]
		}
	}
	return s
}

// Marshal serializes the quantizer (header + codebooks).
func (pq *ProductQuantizer) Marshal() []byte {
	out := make([]byte, 16+4*len(pq.Cents))
	binary.LittleEndian.PutUint32(out[0:], uint32(pq.Dim))
	binary.LittleEndian.PutUint32(out[4:], uint32(pq.M))
	binary.LittleEndian.PutUint32(out[8:], uint32(pq.Nbits))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(pq.Cents)))
	for i, c := range pq.Cents {
		binary.LittleEndian.PutUint32(out[16+4*i:], math.Float32bits(c))
	}
	return out
}

// UnmarshalPQ deserializes a quantizer written by Marshal.
func UnmarshalPQ(data []byte) (*ProductQuantizer, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("quant: truncated PQ header")
	}
	pq := &ProductQuantizer{
		Dim:   int(binary.LittleEndian.Uint32(data[0:])),
		M:     int(binary.LittleEndian.Uint32(data[4:])),
		Nbits: int(binary.LittleEndian.Uint32(data[8:])),
	}
	nc := int(binary.LittleEndian.Uint32(data[12:]))
	if pq.M <= 0 || pq.Dim <= 0 || pq.Dim%pq.M != 0 || (pq.Nbits != 4 && pq.Nbits != 8) {
		return nil, fmt.Errorf("quant: corrupt PQ header dim=%d M=%d nbits=%d", pq.Dim, pq.M, pq.Nbits)
	}
	pq.Ksub = 1 << pq.Nbits
	pq.Dsub = pq.Dim / pq.M
	if nc != pq.M*pq.Ksub*pq.Dsub || len(data) != 16+4*nc {
		return nil, fmt.Errorf("quant: corrupt PQ payload (%d centroid floats)", nc)
	}
	pq.Cents = make([]float32, nc)
	for i := range pq.Cents {
		pq.Cents[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[16+4*i:]))
	}
	return pq, nil
}
