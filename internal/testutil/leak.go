// Package testutil holds small helpers shared across package tests.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckNoLeaks fails the test unless the process goroutine count
// returns to at most before within two seconds. Capture before with
// runtime.NumGoroutine() ahead of the work under test; the polling
// loop tolerates the scheduler's lag in reaping finished goroutines.
func CheckNoLeaks(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
