package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"blendhouse/internal/core"
	"blendhouse/pkg/client"
)

// TestEndToEndByteIdentical is the acceptance contract: a statement
// through client → server → engine returns results byte-identical to
// in-process Engine.Query. "Byte-identical" is checked on the
// canonical JSON encoding — the client decodes numbers as json.Number,
// so the wire text survives the round trip exactly.
func TestEndToEndByteIdentical(t *testing.T) {
	e := testEngine(t, 0)
	_, c := startServer(t, e, Config{})
	ctx := context.Background()

	queries := []string{
		testQuery(),
		"SHOW TABLES",
		"DESCRIBE items",
		"SELECT id, label FROM items WHERE label = 'l2' ORDER BY id LIMIT 7",
	}
	for _, q := range queries {
		inproc, err := e.Query(ctx, q, core.QueryOptions{})
		if err != nil {
			t.Fatalf("in-process %q: %v", q, err)
		}
		remote, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("remote %q: %v", q, err)
		}

		wantCols, _ := json.Marshal(inproc.Columns)
		gotCols, _ := json.Marshal(remote.Columns)
		if !bytes.Equal(wantCols, gotCols) {
			t.Fatalf("%q columns differ:\n want %s\n got  %s", q, wantCols, gotCols)
		}
		want, _ := json.Marshal(inproc.Rows)
		got, _ := json.Marshal(remote.Rows)
		if !bytes.Equal(want, got) {
			t.Fatalf("%q rows differ:\n want %s\n got  %s", q, want, got)
		}

		// The streaming path must be byte-identical too.
		st, err := c.QueryStream(ctx, q)
		if err != nil {
			t.Fatalf("stream %q: %v", q, err)
		}
		var srows [][]any
		for {
			row, err := st.Next()
			if err != nil {
				break
			}
			srows = append(srows, row)
		}
		st.Close()
		if len(srows) != len(inproc.Rows) {
			t.Fatalf("%q streamed %d rows, want %d", q, len(srows), len(inproc.Rows))
		}
		sgot, _ := json.Marshal(srows)
		if len(srows) > 0 && !bytes.Equal(want, sgot) {
			t.Fatalf("%q streamed rows differ:\n want %s\n got  %s", q, want, sgot)
		}
	}
}

// TestEndToEndClientTimeout checks a client-set timeout propagates as
// a deadline into the engine: the statement fails with ErrTimeout in
// bounded time instead of running its full (seconds-long) course.
func TestEndToEndClientTimeout(t *testing.T) {
	e := testEngine(t, 5*time.Millisecond)
	_, c := startServer(t, e, Config{})

	start := time.Now()
	_, err := c.Query(context.Background(), testQuery(), client.WithTimeout(30*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("want client.ErrTimeout, got %v", err)
	}
	// The deadline must cancel the engine's remote reads, not just the
	// HTTP response: the full scan would take far longer than this.
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out query returned after %v", elapsed)
	}
}

// TestEndToEndContextCancel checks a canceled client context surfaces
// as ErrCanceled without waiting for the statement.
func TestEndToEndContextCancel(t *testing.T) {
	e := testEngine(t, 5*time.Millisecond)
	_, c := startServer(t, e, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, testQuery())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrCanceled) {
			t.Fatalf("want client.ErrCanceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return within 5s")
	}
}

// TestPerRequestParallelismOverride drives max_parallelism through
// the wire and confirms results stay identical to the default (the
// PR 2 determinism contract, now across the network).
func TestPerRequestParallelismOverride(t *testing.T) {
	e := testEngine(t, 0)
	_, c := startServer(t, e, Config{})
	ctx := context.Background()

	base, err := c.Query(ctx, testQuery())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 16} {
		res, err := c.Query(ctx, testQuery(), client.WithMaxParallelism(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		want, _ := json.Marshal(base.Rows)
		got, _ := json.Marshal(res.Rows)
		if !bytes.Equal(want, got) {
			t.Fatalf("par=%d rows differ from default", par)
		}
	}
}
