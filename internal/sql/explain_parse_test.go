package sql

import "testing"

func TestParseExplain(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT id FROM images ORDER BY L2Distance(embedding, [1,2]) LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*Explain)
	if !ok {
		t.Fatalf("got %T, want *Explain", st)
	}
	if ex.Analyze {
		t.Fatal("plain EXPLAIN parsed as ANALYZE")
	}
	if ex.Query == nil || ex.Query.Table != "images" {
		t.Fatalf("wrapped select not parsed: %+v", ex.Query)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	st, err := Parse("explain analyze select * from t where score > 0.5 order by L2Distance(v, [0]) limit 3")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*Explain)
	if !ok {
		t.Fatalf("got %T, want *Explain", st)
	}
	if !ex.Analyze {
		t.Fatal("ANALYZE flag not set")
	}
	if len(ex.Query.Where) != 1 {
		t.Fatalf("wrapped WHERE lost: %+v", ex.Query.Where)
	}
}

func TestParseShowMetrics(t *testing.T) {
	st, err := Parse("SHOW METRICS")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*ShowMetrics); !ok {
		t.Fatalf("got %T, want *ShowMetrics", st)
	}
	if _, err := Parse("SHOW NOTHING"); err == nil {
		t.Fatal("SHOW NOTHING should fail")
	}
}
