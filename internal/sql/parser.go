package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a hand-written recursive-descent parser with one token of
// lookahead.
type Parser struct {
	lex  *Lexer
	tok  Token
	peek *Token
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokPunct && p.tok.Text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", p.tok.Pos, p.tok.Text)
	}
	return st, nil
}

func (p *Parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// isKw reports whether the current token is the given keyword
// (case-insensitive).
func (p *Parser) isKw(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

func (p *Parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return fmt.Errorf("sql: expected %s at %d, got %q", kw, p.tok.Pos, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) expectPunct(s string) error {
	if p.tok.Kind != TokPunct || p.tok.Text != s {
		return fmt.Errorf("sql: expected %q at %d, got %q", s, p.tok.Pos, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) ident() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", fmt.Errorf("sql: expected identifier at %d, got %q", p.tok.Pos, p.tok.Text)
	}
	s := p.tok.Text
	return s, p.advance()
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("SHOW"):
		return p.parseShow()
	case p.isKw("DESCRIBE"), p.isKw("DESC"):
		return p.parseDescribe()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("OPTIMIZE"):
		return p.parseOptimize()
	case p.isKw("EXPLAIN"):
		return p.parseExplain()
	case p.isKw("BACKUP"):
		return p.parseBackup()
	case p.isKw("RESTORE"):
		return p.parseRestore()
	default:
		return nil, fmt.Errorf("sql: unexpected statement start %q at %d", p.tok.Text, p.tok.Pos)
	}
}

// --- CREATE TABLE -----------------------------------------------------------

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.isKw("INDEX") {
			idx, err := p.parseIndexSpec()
			if err != nil {
				return nil, err
			}
			ct.Indexes = append(ct.Indexes, *idx)
		} else {
			col, err := p.parseColumnSpec()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, *col)
		}
		if p.tok.Kind == TokPunct && p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Optional clauses in any of the paper's orders: ORDER BY,
	// PARTITION BY, CLUSTER BY.
	for {
		switch {
		case p.isKw("ORDER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw("BY"); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct.OrderBy = col
		case p.isKw("PARTITION"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw("BY"); err != nil {
				return nil, err
			}
			cols, err := p.parsePartitionList()
			if err != nil {
				return nil, err
			}
			ct.PartitionBy = cols
		case p.isKw("CLUSTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKw("BY"); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct.ClusterBy = col
			if err := p.expectKw("INTO"); err != nil {
				return nil, err
			}
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			ct.ClusterBuckets = int(n)
			if err := p.expectKw("BUCKETS"); err != nil {
				return nil, err
			}
		default:
			return ct, nil
		}
	}
}

// parsePartitionList parses (expr, expr) or a bare expr, where expr is
// a column or func(column) — functions reduce to their column.
func (p *Parser) parsePartitionList() ([]string, error) {
	var cols []string
	parenthesized := p.tok.Kind == TokPunct && p.tok.Text == "("
	if parenthesized {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind == TokPunct && p.tok.Text == "(" {
			// function wrapper: func(col) → col
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			name = inner
		}
		cols = append(cols, name)
		if parenthesized && p.tok.Kind == TokPunct && p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if parenthesized {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return cols, nil
}

func (p *Parser) parseColumnSpec() (*ColumnSpec, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typeName, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Array(Float32)-style parameterized type.
	if p.tok.Kind == TokPunct && p.tok.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		typeName = typeName + "(" + inner + ")"
	}
	return &ColumnSpec{Name: name, TypeName: typeName}, nil
}

func (p *Parser) parseIndexSpec() (*IndexSpec, error) {
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("TYPE"); err != nil {
		return nil, err
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	idx := &IndexSpec{Name: name, Column: col, Kind: strings.ToUpper(kind)}
	if p.tok.Kind == TokPunct && p.tok.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for p.tok.Kind == TokString {
			idx.Params = append(idx.Params, p.tok.Text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokPunct && p.tok.Text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

func (p *Parser) parseShow() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case p.isKw("TABLES"):
		return &ShowTables{}, p.advance()
	case p.isKw("METRICS"):
		return &ShowMetrics{}, p.advance()
	case p.isKw("TRACES"):
		return &ShowTraces{}, p.advance()
	default:
		return nil, fmt.Errorf("sql: expected TABLES, METRICS or TRACES at %d, got %q", p.tok.Pos, p.tok.Text)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <select>.
func (p *Parser) parseExplain() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	ex := &Explain{}
	if p.isKw("ANALYZE") {
		ex.Analyze = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	ex.Query = st.(*Select)
	return ex, nil
}

func (p *Parser) parseDescribe() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKw("TABLE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &Describe{Name: name}, nil
}

// parseDelete accepts the keyed forms DELETE FROM t WHERE col = n and
// DELETE FROM t WHERE col IN (n, ...) — the multi-version delete path.
func (p *Parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("WHERE"); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table, Column: col}
	switch {
	case p.tok.Kind == TokOp && p.tok.Text == "=":
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		del.Keys = []int64{n}
	case p.isKw("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			del.Keys = append(del.Keys, n)
			if p.tok.Kind == TokPunct && p.tok.Text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sql: DELETE supports key = n or key IN (...) at %d", p.tok.Pos)
	}
	return del, nil
}

func (p *Parser) parseOptimize() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &Optimize{Name: name}, nil
}

// parseBackup parses BACKUP TABLE t TO 'dest' [WITH KEY 'secret'].
func (p *Parser) parseBackup() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("TO"); err != nil {
		return nil, err
	}
	dest, err := p.stringLit("BACKUP ... TO")
	if err != nil {
		return nil, err
	}
	key, err := p.parseWithKey()
	if err != nil {
		return nil, err
	}
	return &Backup{Table: name, Dest: dest, Key: key}, nil
}

// parseRestore parses RESTORE TABLE t FROM 'src' [WITH KEY 'secret'].
func (p *Parser) parseRestore() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	src, err := p.stringLit("RESTORE ... FROM")
	if err != nil {
		return nil, err
	}
	key, err := p.parseWithKey()
	if err != nil {
		return nil, err
	}
	return &Restore{Table: name, Source: src, Key: key}, nil
}

// parseWithKey parses the optional WITH KEY 'secret' clause.
func (p *Parser) parseWithKey() (string, error) {
	if !p.isKw("WITH") {
		return "", nil
	}
	if err := p.advance(); err != nil {
		return "", err
	}
	if err := p.expectKw("KEY"); err != nil {
		return "", err
	}
	return p.stringLit("WITH KEY")
}

// stringLit consumes a quoted string token.
func (p *Parser) stringLit(clause string) (string, error) {
	if p.tok.Kind != TokString {
		return "", fmt.Errorf("sql: %s expects a quoted string at %d, got %q", clause, p.tok.Pos, p.tok.Text)
	}
	s := p.tok.Text
	return s, p.advance()
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

// --- INSERT -----------------------------------------------------------------

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.isKw("CSV") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("INFILE"); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, fmt.Errorf("sql: INFILE expects a quoted path at %d", p.tok.Pos)
		}
		ins.Infile = p.tok.Text
		return ins, p.advance()
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []any
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.tok.Kind == TokPunct && p.tok.Text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.tok.Kind == TokPunct && p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return ins, nil
}

// literal parses int, float, string, or [float,...] vector.
func (p *Parser) literal() (any, error) {
	switch {
	case p.tok.Kind == TokNumber:
		text := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", text)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", text)
		}
		return n, nil
	case p.tok.Kind == TokString:
		s := p.tok.Text
		return s, p.advance()
	case p.tok.Kind == TokPunct && p.tok.Text == "[":
		return p.vectorLiteral()
	default:
		return nil, fmt.Errorf("sql: expected literal at %d, got %q", p.tok.Pos, p.tok.Text)
	}
}

func (p *Parser) vectorLiteral() ([]float32, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var out []float32
	for p.tok.Kind == TokNumber {
		f, err := strconv.ParseFloat(p.tok.Text, 32)
		if err != nil {
			return nil, fmt.Errorf("sql: bad vector element %q", p.tok.Text)
		}
		out = append(out, float32(f))
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokPunct && p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) intLit() (int64, error) {
	if p.tok.Kind != TokNumber {
		return 0, fmt.Errorf("sql: expected integer at %d, got %q", p.tok.Pos, p.tok.Text)
	}
	n, err := strconv.ParseInt(p.tok.Text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q", p.tok.Text)
	}
	return n, p.advance()
}

// --- SELECT -----------------------------------------------------------------

var distanceFuncs = map[string]bool{
	"l2distance": true, "innerproduct": true, "cosinedistance": true, "ipdistance": true,
}

func isDistanceFunc(name string) bool { return distanceFuncs[strings.ToLower(name)] }

func (p *Parser) parseSelect() (Statement, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Settings: map[string]int{}}
	for {
		if p.tok.Kind == TokPunct && p.tok.Text == "*" {
			sel.Columns = append(sel.Columns, SelectItem{Star: true})
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, SelectItem{Name: name})
		}
		if p.tok.Kind == TokPunct && p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table

	if p.isKw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, *pred)
			if p.isKw("AND") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKw("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		ob, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = ob
	}
	if p.isKw("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = int(n)
	}
	if p.isKw("SETTINGS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			key, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.tok.Kind != TokOp || p.tok.Text != "=" {
				return nil, fmt.Errorf("sql: SETTINGS expects key=value at %d", p.tok.Pos)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			sel.Settings[strings.ToLower(key)] = int(n)
			if p.tok.Kind == TokPunct && p.tok.Text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	return sel, nil
}

func (p *Parser) parseOrderBy() (*OrderBy, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ob := &OrderBy{}
	if isDistanceFunc(name) {
		de, err := p.parseDistanceCall(name)
		if err != nil {
			return nil, err
		}
		ob.Distance = de
		if p.isKw("AS") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			ob.Alias = alias
		}
	} else {
		ob.Column = name
	}
	if p.isKw("DESC") {
		ob.Desc = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.isKw("ASC") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return ob, nil
}

// parseDistanceCall parses (column, [vector]) after the function name.
func (p *Parser) parseDistanceCall(fn string) (*DistanceExpr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	q, err := p.vectorLiteral()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &DistanceExpr{Func: fn, Column: col, Query: q}, nil
}

func (p *Parser) parsePredicate() (*Predicate, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if isDistanceFunc(name) {
		de, err := p.parseDistanceCall(name)
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokOp || (p.tok.Text != "<" && p.tok.Text != "<=") {
			return nil, fmt.Errorf("sql: distance predicate expects < or <= at %d", p.tok.Pos)
		}
		op := PredOp(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &Predicate{Op: op, Value: v, Distance: de}, nil
	}
	switch {
	case p.isKw("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.literal()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &Predicate{Column: name, Op: OpBetween, Value: lo, Value2: hi}, nil
	case p.isKw("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []any
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.tok.Kind == TokPunct && p.tok.Text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Predicate{Column: name, Op: OpIn, Values: vals}, nil
	case p.isKw("REGEXP") || p.isKw("LIKE"):
		op := OpRegexp
		if p.isKw("LIKE") {
			op = OpLike
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, fmt.Errorf("sql: %s expects a quoted pattern at %d", op, p.tok.Pos)
		}
		pat := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Predicate{Column: name, Op: op, Value: pat}, nil
	case p.tok.Kind == TokOp:
		op := PredOp(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &Predicate{Column: name, Op: op, Value: v}, nil
	default:
		return nil, fmt.Errorf("sql: expected operator after %q at %d", name, p.tok.Pos)
	}
}
