// Package index defines the "virtual vector index" abstraction of
// paper §III-A (Figure 5): a single interface every index type
// implements, split into a storage API (Train, AddWithIDs, Save,
// Load) and an execution API (SearchWithFilter, SearchWithRange,
// SearchIterator). Index types register constructors in a global
// registry, making the library pluggable — the engine above never
// names a concrete index type.
//
// Per-segment indexes (paper §III-B) store 0-based row offsets as IDs,
// so filter bitsets and delete bitmaps index directly into them.
package index

import (
	"fmt"
	"io"

	"blendhouse/internal/bitset"
)

// Type identifies an index algorithm, matching the SQL dialect's
// TYPE clause (INDEX ann_idx embedding TYPE HNSW(...)).
type Type string

// The six index types of paper §III-A, plus FLAT (exact scan), which
// the engine uses for brute-force plan A and as the cache-miss
// fallback.
const (
	Flat    Type = "FLAT"
	HNSW    Type = "HNSW"
	HNSWSQ  Type = "HNSWSQ"
	IVFFlat Type = "IVFFLAT"
	IVFPQ   Type = "IVFPQ"
	IVFPQFS Type = "IVFPQFS"
	DiskANN Type = "DISKANN"
)

// Candidate is one search hit: the vector's ID (row offset for
// per-segment indexes) and its distance to the query under the
// index's metric (smaller is closer for every metric).
type Candidate struct {
	ID   int64
	Dist float32
}

// Filter restricts a search to IDs whose bit is set. A nil *Bitset
// means "no restriction". Implementations must not return candidates
// whose bit is clear, and must keep searching until k passing
// candidates are found or the index is exhausted (the "bitset ANN
// scan" of the pre-filter strategy, paper §III-B).
type Filter = *bitset.Bitset

// Iterator supports the SearchIterator execution interface: repeated
// Next calls stream candidates in (approximately) ascending distance
// order without restarting the search. It backs the post-filter
// strategy (paper §III-B) where the engine pulls batches until enough
// rows survive the scalar predicate.
type Iterator interface {
	// Next returns up to n further candidates. It returns an empty
	// slice (not an error) once the index is exhausted.
	Next(n int) ([]Candidate, error)
	// Close releases iterator resources. Safe to call twice.
	Close() error
}

// Index is the virtual vector index. All implementations must be
// safe for concurrent Search* calls after construction is complete;
// AddWithIDs/Train are single-writer (segments are built once and
// sealed, so the engine never mutates a searchable index).
type Index interface {
	// --- storage API -------------------------------------------------

	// Train learns data-dependent parameters (e.g. IVF centroids,
	// quantizer codebooks) from the sample. Indexes for which
	// NeedsTrain() is false treat it as a no-op.
	Train(sample []float32) error
	// AddWithIDs inserts len(ids) vectors (flat row-major). For
	// per-segment indexes the ids are the rows' offsets.
	AddWithIDs(vecs []float32, ids []int64) error
	// Save serializes the full index state.
	Save(w io.Writer) error
	// Load restores state written by Save into a freshly constructed
	// index of the same type and build parameters.
	Load(r io.Reader) error

	// --- execution API -----------------------------------------------

	// SearchWithFilter returns the k nearest candidates passing the
	// filter, closest first. Fewer than k are returned only when the
	// filtered index holds fewer than k vectors.
	SearchWithFilter(q []float32, k int, filter Filter, p SearchParams) ([]Candidate, error)
	// SearchWithRange returns every candidate within radius of q that
	// passes the filter, closest first.
	SearchWithRange(q []float32, radius float32, filter Filter, p SearchParams) ([]Candidate, error)
	// SearchIterator begins an incremental search. Indexes without
	// native support return ErrNoNativeIterator; callers then wrap
	// the index with NewRestartIterator.
	SearchIterator(q []float32, p SearchParams) (Iterator, error)

	// --- metadata ----------------------------------------------------

	Type() Type
	Dim() int
	Count() int
	// MemoryBytes reports resident size of the searchable structure,
	// feeding Table VI and the hierarchical cache's accounting.
	MemoryBytes() int64
	NeedsTrain() bool
}

// ErrNoNativeIterator is returned by SearchIterator for index types
// without incremental search; the engine falls back to the generic
// restart iterator (SingleStore-V style, paper §III-B).
var ErrNoNativeIterator = fmt.Errorf("index: no native iterator; use NewRestartIterator")

// ValidateAdd checks the common AddWithIDs invariants so each
// implementation doesn't re-derive them.
func ValidateAdd(dim int, vecs []float32, ids []int64) error {
	if dim <= 0 {
		return fmt.Errorf("index: dimension not set")
	}
	if len(vecs) != len(ids)*dim {
		return fmt.Errorf("index: %d floats for %d ids at dim %d", len(vecs), len(ids), dim)
	}
	return nil
}
