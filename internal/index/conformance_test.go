// Conformance tests exercising every registered index type through the
// virtual-index interface — the pluggability contract of paper §III-A.
// Each type must pass the same behavioural battery: recall against the
// exact oracle, filtered search, range search, iterator semantics, and
// save/load round-trips.
package index_test

import (
	"bytes"
	"testing"

	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/bitset"
	"blendhouse/internal/index"
	_ "blendhouse/internal/index/diskann"
	_ "blendhouse/internal/index/flat"
	_ "blendhouse/internal/index/hnsw"
	"blendhouse/internal/index/ivf"
	"blendhouse/internal/vec"
)

const (
	tN   = 2000
	tDim = 32
	tK   = 10
)

// minRecall is the recall@10 floor each type must clear on the easy
// clustered test set. Quantized and disk types get more slack.
var minRecall = map[index.Type]float64{
	index.Flat:    1.0,
	index.HNSW:    0.95,
	index.HNSWSQ:  0.90,
	index.IVFFlat: 0.80,
	index.IVFPQ:   0.55,
	index.IVFPQFS: 0.40,
	index.DiskANN: 0.90,
}

func buildParams(typ index.Type) index.BuildParams {
	p := index.BuildParams{Dim: tDim, Metric: vec.L2, Seed: 42, Nlist: 32, PQM: 8}
	return p.WithDefaults()
}

func searchParams() index.SearchParams {
	return index.SearchParams{Ef: 100, Nprobe: 12, RefineFactor: 8}
}

func buildIndex(t *testing.T, typ index.Type, ds *dataset.Dataset) index.Index {
	t.Helper()
	ix, err := index.New(typ, buildParams(typ))
	if err != nil {
		t.Fatalf("New(%s): %v", typ, err)
	}
	if ix.NeedsTrain() {
		if err := ix.Train(ds.Vectors.Data); err != nil {
			t.Fatalf("Train(%s): %v", typ, err)
		}
	}
	ids := make([]int64, ds.Vectors.Rows())
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := ix.AddWithIDs(ds.Vectors.Data, ids); err != nil {
		t.Fatalf("AddWithIDs(%s): %v", typ, err)
	}
	wireProvider(ix, ds)
	return ix
}

// wireProvider gives quantized IVF variants the refine stage the
// engine always wires (the paper's "RFlat" exact re-rank of σ·k ADC
// candidates).
func wireProvider(ix index.Index, ds *dataset.Dataset) {
	if iv, ok := ix.(*ivf.Index); ok {
		iv.SetRawProvider(func(id int64, out []float32) bool {
			if id < 0 || id >= int64(ds.Vectors.Rows()) {
				return false
			}
			copy(out, ds.Vectors.Row(int(id)))
			return true
		})
	}
}

func allTypes() []index.Type {
	return []index.Type{index.Flat, index.HNSW, index.HNSWSQ, index.IVFFlat, index.IVFPQ, index.IVFPQFS, index.DiskANN}
}

func TestRegistryListsAllTypes(t *testing.T) {
	reg := map[index.Type]bool{}
	for _, typ := range index.Registered() {
		reg[typ] = true
	}
	for _, typ := range allTypes() {
		if !reg[typ] {
			t.Errorf("type %s not registered", typ)
		}
	}
}

func TestNewUnknownType(t *testing.T) {
	if _, err := index.New("BOGUS", index.BuildParams{Dim: 4}); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestRecallAgainstExactOracle(t *testing.T) {
	ds := dataset.Small(tN, tDim, 1)
	truth := ds.GroundTruth(vec.L2, tK, nil)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			if ix.Count() != tN {
				t.Fatalf("Count = %d, want %d", ix.Count(), tN)
			}
			got := make([][]int64, ds.Queries.Rows())
			for qi := 0; qi < ds.Queries.Rows(); qi++ {
				res, err := ix.SearchWithFilter(ds.Queries.Row(qi), tK, nil, searchParams())
				if err != nil {
					t.Fatal(err)
				}
				ids := make([]int64, len(res))
				for i, c := range res {
					ids[i] = c.ID
				}
				got[qi] = ids
			}
			r := dataset.Recall(truth, got)
			if r < minRecall[typ] {
				t.Fatalf("recall@%d = %.3f, want >= %.2f", tK, r, minRecall[typ])
			}
			t.Logf("recall@%d = %.3f", tK, r)
		})
	}
}

func TestResultsSortedAndDistinct(t *testing.T) {
	ds := dataset.Small(tN, tDim, 2)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			res, err := ix.SearchWithFilter(ds.Queries.Row(0), 20, nil, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int64]bool{}
			for i, c := range res {
				if i > 0 && res[i-1].Dist > c.Dist {
					t.Fatalf("results not sorted at %d: %v > %v", i, res[i-1].Dist, c.Dist)
				}
				if seen[c.ID] {
					t.Fatalf("duplicate id %d", c.ID)
				}
				seen[c.ID] = true
				if c.ID < 0 || c.ID >= tN {
					t.Fatalf("id %d out of range", c.ID)
				}
			}
		})
	}
}

func TestFilteredSearchHonorsBitset(t *testing.T) {
	ds := dataset.Small(tN, tDim, 3)
	// Allow only even ids.
	filter := bitset.New(tN)
	for i := 0; i < tN; i += 2 {
		filter.Set(i)
	}
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			res, err := ix.SearchWithFilter(ds.Queries.Row(1), tK, filter, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(res) == 0 {
				t.Fatal("no results with half-open filter")
			}
			for _, c := range res {
				if c.ID%2 != 0 {
					t.Fatalf("id %d violates filter", c.ID)
				}
			}
		})
	}
}

func TestFilterAllowsNothing(t *testing.T) {
	ds := dataset.Small(500, tDim, 4)
	empty := bitset.New(500)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			res, err := ix.SearchWithFilter(ds.Queries.Row(0), tK, empty, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 0 {
				t.Fatalf("empty filter returned %d results", len(res))
			}
		})
	}
}

func TestTinyFilterStillFindsAll(t *testing.T) {
	// With only 5 allowed ids, a conformant bitset scan must return all
	// 5 (the pre-filter contract: keep searching until the filtered set
	// is exhausted). Graph indexes may legitimately miss some under
	// extreme selectivity, so this is only asserted for flat and IVF
	// types, which scan lists exhaustively.
	ds := dataset.Small(1000, tDim, 5)
	filter := bitset.New(1000)
	allowed := []int{3, 77, 205, 512, 999}
	for _, i := range allowed {
		filter.Set(i)
	}
	for _, typ := range []index.Type{index.Flat, index.IVFFlat} {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			p := searchParams()
			p.Nprobe = 32 // probe everything
			res, err := ix.SearchWithFilter(ds.Queries.Row(0), 5, filter, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 5 {
				t.Fatalf("got %d results, want 5", len(res))
			}
		})
	}
}

func TestRangeSearchWithinRadius(t *testing.T) {
	ds := dataset.Small(tN, tDim, 6)
	q := ds.Queries.Row(0)
	// Pick a radius that captures roughly the 30 nearest per the oracle.
	truth := ds.GroundTruth(vec.L2, 30, nil)
	worst := vec.Distance(vec.L2, q, ds.Vectors.Row(int(truth[0][len(truth[0])-1])))
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			res, err := ix.SearchWithRange(q, worst, nil, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res {
				if c.Dist > worst {
					t.Fatalf("candidate at %v beyond radius %v", c.Dist, worst)
				}
				exact := vec.Distance(vec.L2, q, ds.Vectors.Row(int(c.ID)))
				// Quantized types report approximate distances; just
				// check exact types strictly.
				if typ == index.Flat && exact != c.Dist {
					t.Fatalf("flat distance mismatch: %v != %v", exact, c.Dist)
				}
			}
			if typ == index.Flat && len(res) != 30 {
				t.Fatalf("flat range found %d, want 30", len(res))
			}
			// Approximate types must still find a sizeable fraction.
			if len(res) < 10 {
				t.Fatalf("range search found only %d of ~30 in-range", len(res))
			}
		})
	}
}

func TestIteratorStreamsWithoutDuplicates(t *testing.T) {
	ds := dataset.Small(tN, tDim, 7)
	q := ds.Queries.Row(2)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			it, err := index.OpenIterator(ix, q, tK, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			seen := map[int64]bool{}
			total := 0
			for round := 0; round < 10; round++ {
				batch, err := it.Next(17)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) == 0 {
					break
				}
				for _, c := range batch {
					if seen[c.ID] {
						t.Fatalf("iterator re-emitted id %d", c.ID)
					}
					seen[c.ID] = true
				}
				total += len(batch)
			}
			if total < 50 {
				t.Fatalf("iterator yielded only %d candidates", total)
			}
		})
	}
}

func TestIteratorFirstBatchMatchesTopK(t *testing.T) {
	// The first k iterator results must largely agree with a direct
	// top-k search (identical for exact, near-identical for ANN).
	ds := dataset.Small(tN, tDim, 8)
	q := ds.Queries.Row(3)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			direct, err := ix.SearchWithFilter(q, tK, nil, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			it, err := index.OpenIterator(ix, q, tK, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			batch, err := it.Next(tK)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int64]bool{}
			for _, c := range direct {
				want[c.ID] = true
			}
			overlap := 0
			for _, c := range batch {
				if want[c.ID] {
					overlap++
				}
			}
			if overlap < tK*6/10 {
				t.Fatalf("iterator head overlaps direct top-k on only %d/%d", overlap, tK)
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.Small(tN, tDim, 9)
	q := ds.Queries.Row(4)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			before, err := ix.SearchWithFilter(q, tK, nil, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			fresh, err := index.New(typ, buildParams(typ))
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Load(&buf); err != nil {
				t.Fatalf("Load: %v", err)
			}
			wireProvider(fresh, ds)
			if fresh.Count() != ix.Count() {
				t.Fatalf("Count after load %d != %d", fresh.Count(), ix.Count())
			}
			after, err := fresh.SearchWithFilter(q, tK, nil, searchParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != len(after) {
				t.Fatalf("result count changed: %d != %d", len(before), len(after))
			}
			for i := range before {
				if before[i].ID != after[i].ID || before[i].Dist != after[i].Dist {
					t.Fatalf("result %d changed: %+v != %+v", i, before[i], after[i])
				}
			}
		})
	}
}

func TestLoadRejectsWrongType(t *testing.T) {
	ds := dataset.Small(300, tDim, 10)
	hn := buildIndex(t, index.HNSW, ds)
	var buf bytes.Buffer
	if err := hn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fl, err := index.New(index.Flat, buildParams(index.Flat))
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Load(&buf); err == nil {
		t.Fatal("loading HNSW blob into flat index should fail")
	}
}

func TestDimensionMismatchErrors(t *testing.T) {
	ds := dataset.Small(300, tDim, 11)
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix := buildIndex(t, typ, ds)
			if _, err := ix.SearchWithFilter(make([]float32, tDim+1), 5, nil, searchParams()); err == nil {
				t.Error("query dim mismatch should fail")
			}
			if err := ix.AddWithIDs(make([]float32, 7), []int64{1, 2}); err == nil {
				t.Error("ragged add should fail")
			}
		})
	}
}

func TestMemoryBytesOrdering(t *testing.T) {
	// Table VI's shape: HNSW > HNSWSQ > IVFPQFS.
	ds := dataset.Small(tN, tDim, 12)
	sizes := map[index.Type]int64{}
	for _, typ := range []index.Type{index.HNSW, index.HNSWSQ, index.IVFPQFS} {
		ix := buildIndex(t, typ, ds)
		sizes[typ] = ix.MemoryBytes()
		if sizes[typ] <= 0 {
			t.Fatalf("%s MemoryBytes = %d", typ, sizes[typ])
		}
	}
	if !(sizes[index.HNSW] > sizes[index.HNSWSQ] && sizes[index.HNSWSQ] > sizes[index.IVFPQFS]) {
		t.Fatalf("memory ordering violated: %v", sizes)
	}
}

func TestEmptyIndexSearches(t *testing.T) {
	for _, typ := range allTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			ix, err := index.New(typ, buildParams(typ))
			if err != nil {
				t.Fatal(err)
			}
			q := make([]float32, tDim)
			res, err := ix.SearchWithFilter(q, 5, nil, searchParams())
			if err != nil {
				t.Fatalf("search on empty index: %v", err)
			}
			if len(res) != 0 {
				t.Fatalf("empty index returned %d results", len(res))
			}
		})
	}
}

func TestParseKV(t *testing.T) {
	p, err := index.ParseKV(0, vec.L2, []string{"DIM=960", "M=32", "EF_CONSTRUCTION=100", "METRIC=Cosine"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim != 960 || p.M != 32 || p.EfConstruction != 100 || p.Metric != vec.Cosine {
		t.Fatalf("parsed %+v", p)
	}
	if _, err := index.ParseKV(0, vec.L2, []string{"M=16"}); err == nil {
		t.Error("missing DIM should fail")
	}
	if _, err := index.ParseKV(16, vec.L2, []string{"BOGUS=1"}); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := index.ParseKV(16, vec.L2, []string{"M=abc"}); err == nil {
		t.Error("non-integer should fail")
	}
	if _, err := index.ParseKV(16, vec.L2, []string{"M16"}); err == nil {
		t.Error("malformed kv should fail")
	}
}
