package dataset

import (
	"testing"

	"blendhouse/internal/vec"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Name: "x", N: 200, Dim: 8, Seed: 5, WithInts: true, WithCaptions: true})
	b := Generate(Spec{Name: "x", N: 200, Dim: 8, Seed: 5, WithInts: true, WithCaptions: true})
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatal("same seed produced different vectors")
		}
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			t.Fatal("same seed produced different attrs")
		}
	}
	c := Generate(Spec{Name: "x", N: 200, Dim: 8, Seed: 6})
	same := true
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != c.Vectors.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical vectors")
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := Generate(Spec{Name: "x", N: 300, Dim: 12, Queries: 17, Seed: 1,
		WithInts: true, WithFloats: true, WithCaptions: true, WithProdCols: true})
	if ds.Vectors.Rows() != 300 || ds.Vectors.Dim != 12 {
		t.Fatalf("vectors %dx%d", ds.Vectors.Rows(), ds.Vectors.Dim)
	}
	if ds.Queries.Rows() != 17 {
		t.Fatalf("queries = %d", ds.Queries.Rows())
	}
	if len(ds.Ints) != 300 || len(ds.Floats) != 300 || len(ds.Captions) != 300 {
		t.Fatal("scalar columns missing")
	}
	if len(ds.Category) != 300 || len(ds.Region) != 300 || len(ds.TSMillis) != 300 {
		t.Fatal("prod columns missing")
	}
	// Timestamps ascend (production sampling order).
	for i := 1; i < 300; i++ {
		if ds.TSMillis[i] < ds.TSMillis[i-1] {
			t.Fatal("timestamps not ascending")
		}
	}
	// Cluster assignments valid.
	for _, c := range ds.ClusterOf {
		if c < 0 || c >= ds.Spec.Clusters {
			t.Fatalf("cluster id %d out of range", c)
		}
	}
	// Floats in [0,1).
	for _, f := range ds.Floats {
		if f < 0 || f >= 1 {
			t.Fatalf("similarity %v out of range", f)
		}
	}
}

func TestClusteredStructure(t *testing.T) {
	// Same-cluster rows must on average be far closer than
	// cross-cluster rows, or the ANN/partitioning experiments are
	// meaningless.
	ds := Generate(Spec{Name: "x", N: 400, Dim: 16, Clusters: 4, Seed: 2})
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			d := float64(vec.L2Squared(ds.Vectors.Row(i), ds.Vectors.Row(j)))
			if ds.ClusterOf[i] == ds.ClusterOf[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Fatal("degenerate cluster assignment")
	}
	if same/float64(nSame) >= cross/float64(nCross)/2 {
		t.Fatalf("clusters not separated: same=%.4f cross=%.4f", same/float64(nSame), cross/float64(nCross))
	}
}

func TestGroundTruthAndRecall(t *testing.T) {
	ds := Small(300, 8, 3)
	truth := ds.GroundTruth(vec.L2, 5, nil)
	if len(truth) != ds.Queries.Rows() {
		t.Fatalf("truth arity %d", len(truth))
	}
	for _, ids := range truth {
		if len(ids) != 5 {
			t.Fatalf("truth row has %d ids", len(ids))
		}
	}
	// Perfect recall against itself.
	if r := Recall(truth, truth); r != 1 {
		t.Fatalf("self recall = %v", r)
	}
	// Half-overlapping lists.
	got := make([][]int64, len(truth))
	for i, ids := range truth {
		got[i] = append([]int64{}, ids...)
		got[i][0] = -1 // one wrong of five
	}
	if r := Recall(truth, got); r != 0.8 {
		t.Fatalf("partial recall = %v, want 0.8", r)
	}
	// Truth is sorted ascending by distance.
	q := ds.Queries.Row(0)
	prev := float32(-1)
	for _, id := range truth[0] {
		d := vec.L2Squared(q, ds.Vectors.Row(int(id)))
		if d < prev {
			t.Fatal("ground truth not sorted by distance")
		}
		prev = d
	}
}

func TestGroundTruthFiltered(t *testing.T) {
	ds := Small(300, 8, 4)
	keep := func(i int) bool { return i%2 == 0 }
	truth := ds.GroundTruth(vec.L2, 10, keep)
	for _, ids := range truth {
		for _, id := range ids {
			if id%2 != 0 {
				t.Fatalf("filtered truth contains excluded id %d", id)
			}
		}
	}
	// Filter excluding everything yields empty truth and recall 1.
	empty := ds.GroundTruth(vec.L2, 10, func(int) bool { return false })
	if r := Recall(empty, empty); r != 1 {
		t.Fatalf("empty-truth recall = %v", r)
	}
}

func TestPresets(t *testing.T) {
	if d := Cohere(100, 1); d.Spec.Dim != 768 || d.Ints == nil {
		t.Fatal("Cohere preset wrong")
	}
	if d := OpenAI(100, 1); d.Spec.Dim != 1536 {
		t.Fatal("OpenAI preset wrong")
	}
	if d := LAION(100, 1); d.Spec.Dim != 512 || d.Captions == nil || d.Floats == nil {
		t.Fatal("LAION preset wrong")
	}
	if d := Prod(100, 1); d.Category == nil || d.TSMillis == nil {
		t.Fatal("Prod preset wrong")
	}
}
