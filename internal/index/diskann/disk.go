package diskann

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"blendhouse/internal/index"
	"blendhouse/internal/vec"
)

// DiskSearcher beam-searches a Vamana graph straight off an
// io.ReaderAt in the Save layout, reading one node record per beam
// expansion and keeping only a bounded LRU-ish node cache in memory.
// This is the cold-read on-disk path: memory stays O(cache), and each
// expansion costs one storage read — matching DiskANN's design point
// of one SSD read per hop.
type DiskSearcher struct {
	r       io.ReaderAt
	dim     int
	degree  int
	entry   int
	n       int
	metric  vec.Metric
	recSize int

	mu    sync.Mutex
	cache map[int]*diskNode
	order []int // FIFO eviction order
	limit int

	// Reads counts node records fetched from storage, for tests and
	// the cold-read benchmarks.
	Reads int64
}

type diskNode struct {
	id    int64
	edges []uint32
	vec   []float32
}

// OpenDiskSearcher validates the header of a Save()-format blob and
// returns a searcher that caches at most cacheNodes node records.
func OpenDiskSearcher(r io.ReaderAt, metric vec.Metric, cacheNodes int) (*DiskSearcher, error) {
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("diskann: reading disk header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != magic {
		return nil, fmt.Errorf("diskann: bad disk magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	degree := int(binary.LittleEndian.Uint32(hdr[8:]))
	entry := int(int64(binary.LittleEndian.Uint64(hdr[12:])))
	n := int(binary.LittleEndian.Uint64(hdr[20:]))
	if dim <= 0 || degree <= 0 || n < 0 {
		return nil, fmt.Errorf("diskann: corrupt disk header dim=%d degree=%d n=%d", dim, degree, n)
	}
	if cacheNodes <= 0 {
		cacheNodes = 1024
	}
	return &DiskSearcher{
		r: r, dim: dim, degree: degree, entry: entry, n: n, metric: metric,
		recSize: nodeRecordSize(dim, degree),
		cache:   make(map[int]*diskNode, cacheNodes),
		limit:   cacheNodes,
	}, nil
}

// Count returns the number of nodes in the on-disk graph.
func (ds *DiskSearcher) Count() int { return ds.n }

// node fetches node i, via cache or storage read.
func (ds *DiskSearcher) node(i int) (*diskNode, error) {
	ds.mu.Lock()
	if nd, ok := ds.cache[i]; ok {
		ds.mu.Unlock()
		return nd, nil
	}
	ds.mu.Unlock()

	buf := make([]byte, ds.recSize)
	off := int64(headerSize) + int64(i)*int64(ds.recSize)
	if _, err := ds.r.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("diskann: reading node %d: %w", i, err)
	}
	nd := &diskNode{id: int64(binary.LittleEndian.Uint64(buf))}
	ne := int(binary.LittleEndian.Uint32(buf[8:]))
	if ne > ds.degree {
		return nil, fmt.Errorf("diskann: node %d corrupt edge count %d", i, ne)
	}
	nd.edges = make([]uint32, ne)
	for e := 0; e < ne; e++ {
		nd.edges[e] = binary.LittleEndian.Uint32(buf[12+4*e:])
	}
	nd.vec = make([]float32, ds.dim)
	vecOff := 12 + 4*ds.degree
	for d := 0; d < ds.dim; d++ {
		nd.vec[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[vecOff+4*d:]))
	}

	ds.mu.Lock()
	ds.Reads++
	if _, ok := ds.cache[i]; !ok {
		if len(ds.cache) >= ds.limit && len(ds.order) > 0 {
			evict := ds.order[0]
			ds.order = ds.order[1:]
			delete(ds.cache, evict)
		}
		ds.cache[i] = nd
		ds.order = append(ds.order, i)
	}
	ds.mu.Unlock()
	return nd, nil
}

// Search beam-searches for the k nearest neighbors with beam width l.
func (ds *DiskSearcher) Search(q []float32, k int, p index.SearchParams) ([]index.Candidate, error) {
	if len(q) != ds.dim {
		return nil, fmt.Errorf("diskann: query dim %d != index dim %d", len(q), ds.dim)
	}
	if ds.n == 0 || ds.entry < 0 {
		return nil, nil
	}
	p = p.WithDefaults(k)
	l := p.Ef
	if l < k {
		l = k
	}
	b := newBeam(l)
	seen := map[int]bool{ds.entry: true}
	en, err := ds.node(ds.entry)
	if err != nil {
		return nil, err
	}
	b.offer(scored{ds.entry, vec.Distance(ds.metric, q, en.vec)})
	t := index.NewTopK(k)
	for {
		c, ok := b.nextUnexpanded()
		if !ok {
			break
		}
		nd, err := ds.node(c.node)
		if err != nil {
			return nil, err
		}
		t.Push(index.Candidate{ID: nd.id, Dist: c.dist})
		for _, nb := range nd.edges {
			ni := int(nb)
			if seen[ni] {
				continue
			}
			seen[ni] = true
			nn, err := ds.node(ni)
			if err != nil {
				return nil, err
			}
			b.offer(scored{ni, vec.Distance(ds.metric, q, nn.vec)})
		}
	}
	return t.Results(), nil
}
