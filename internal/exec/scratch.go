package exec

import (
	"sync"

	"blendhouse/internal/index"
)

// Per-segment scan scratch: the row-offset list and candidate buffer a
// brute-force scan needs, pooled so steady-state query execution stays
// allocation-free. Pooled buffers must never escape the scan that
// borrowed them — results are copied out (as hits) before release.
type scanScratch struct {
	rows  []int
	cands []index.Candidate
}

var scratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch() *scanScratch { return scratchPool.Get().(*scanScratch) }

func putScratch(s *scanScratch) {
	s.rows = s.rows[:0]
	s.cands = s.cands[:0]
	scratchPool.Put(s)
}

// scanBlock is the number of rows the fused brute-force scan feeds to
// one blocked kernel call — matches the flat index's blocking, big
// enough to amortize the heap-threshold refresh, small enough for a
// stack buffer.
const scanBlock = 64
