package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatalf("Clear(64) failed: test=%v count=%d", b.Test(64), b.Count())
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100} {
		b := NewFull(n)
		if b.Count() != n {
			t.Errorf("NewFull(%d).Count = %d", n, b.Count())
		}
	}
}

func TestNotRespectsLogicalLength(t *testing.T) {
	b := New(70)
	b.Not()
	if b.Count() != 70 {
		t.Fatalf("Not on empty 70-bit set: Count = %d, want 70", b.Count())
	}
	b.Not()
	if b.Count() != 0 {
		t.Fatalf("double Not: Count = %d, want 0", b.Count())
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(2)

	and := a.Clone()
	and.And(b)
	if got := and.Ones(); len(got) != 1 || got[0] != 50 {
		t.Fatalf("And = %v, want [50]", got)
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 4 {
		t.Fatalf("Or count = %d, want 4", or.Count())
	}

	an := a.Clone()
	an.AndNot(b)
	if got := an.Ones(); len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Fatalf("AndNot = %v, want [1 99]", got)
	}
}

func TestOpsPanicOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	New(10).And(New(11))
}

func TestForEachEarlyStop(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 10 {
		b.Set(i)
	}
	var visited []int
	b.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 3
	})
	if len(visited) != 3 || visited[2] != 20 {
		t.Fatalf("visited = %v", visited)
	}
}

func TestNextSet(t *testing.T) {
	b := New(200)
	b.Set(5)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(10).NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 64, 65, 1000} {
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var c Bitset
		if err := c.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.Len() != b.Len() || c.Count() != b.Count() {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != c.Test(i) {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var b Bitset
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should fail")
	}
	good, _ := NewFull(100).MarshalBinary()
	if err := b.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestDeMorganProperty(t *testing.T) {
	// ¬(a ∧ b) == ¬a ∨ ¬b over the logical length.
	f := func(xs, ys []bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if xs[i] {
				a.Set(i)
			}
			if ys[i] {
				b.Set(i)
			}
		}
		left := a.Clone()
		left.And(b)
		left.Not()
		na := a.Clone()
		na.Not()
		nb := b.Clone()
		nb.Not()
		na.Or(nb)
		for i := 0; i < n; i++ {
			if left.Test(i) != na.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesOnesProperty(t *testing.T) {
	f := func(xs []bool) bool {
		b := New(len(xs))
		want := 0
		for i, x := range xs {
			if x {
				b.Set(i)
				want++
			}
		}
		return b.Count() == want && len(b.Ones()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
