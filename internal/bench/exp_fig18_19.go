package bench

import (
	"context"
	"fmt"
	"time"

	"blendhouse/internal/baseline/bh"
	"blendhouse/internal/bench/dataset"
	"blendhouse/internal/cluster"
	"blendhouse/internal/index"
	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
)

func init() {
	register("fig18", "Immediate query QPS while scaling the VW (vector search serving)", runFig18)
	register("fig19", "Per-worker QPS vs number of segments (compaction convergence)", runFig19)
}

// runFig18 reproduces Figure 18: QPS measured immediately after each
// scale-up step, *before* the new workers' index caches warm. With
// vector search serving, new workers contribute at once by proxying
// cold segments to their previous owners; no brute-force fallbacks
// occur. The workload is I/O-inclusive (result rows are fetched from
// the latency-modeled remote store), so added workers genuinely raise
// throughput even on one core.
func runFig18(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig18", Title: "Immediate QPS in response to scaling",
		Headers: []string{"workers", "QPS", "scaling vs 1 worker", "brute-force fallbacks"}}
	rep.Note("paper Fig 18: QPS grows ~linearly as workers join; serving lets cold workers contribute immediately")
	rep.Note("worker capacity is simulated (2 slots; 0.2ms per ANN scan + 1ms per-segment post-processing) because the host has one core; the serving behaviour — cold workers contributing immediately, zero brute-force fallbacks — is real")
	ds := dataset.Generate(dataset.Spec{Name: "fig18", N: cfg.n(8000), Dim: 48, Queries: cfg.Queries, Seed: cfg.Seed})
	vw, tab, err := clusterFixtureScan(cfg, 1, true, ds, 200*time.Microsecond, time.Millisecond)
	if err != nil {
		return nil, err
	}
	if errs := vw.Preload(tab); len(errs) != 0 {
		return nil, fmt.Errorf("preload: %v", errs[0])
	}
	metas := tab.Segments()
	params := index.SearchParams{Ef: 32}
	// Each query ends by fetching its result rows from the
	// latency-modeled remote store (the end-to-end query of the
	// paper's workload, not a bare ANN probe). Client concurrency is
	// fixed well above VW capacity, so throughput is capacity-bound —
	// adding workers is what raises it.
	const clientConcurrency = 16
	runQuery := func(qi int) error {
		cands, err := vw.Search(context.Background(), tab, metas, ds.Queries.Row(qi%ds.Queries.Rows()), 10, cluster.SearchOptions{Params: params})
		if err != nil {
			return err
		}
		for _, c := range cands[:minInt(3, len(cands))] {
			rd, err := tab.Reader(c.Segment)
			if err != nil {
				return err
			}
			if _, err := rd.ReadRows("id", []int{int(c.Offset)}); err != nil {
				return err
			}
		}
		return nil
	}
	var baseQPS float64
	for workers := 1; workers <= 4; workers++ {
		if workers > 1 {
			// Scale up WITHOUT preloading the new worker: serving must
			// cover its cold cache.
			if _, err := vw.AddWorker(fmt.Sprintf("w%d", workers-1)); err != nil {
				return nil, err
			}
		}
		timing, err := MeasureConcurrent(cfg.Queries*2, clientConcurrency, runQuery)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			baseQPS = timing.QPS
		}
		var brute int64
		for _, wid := range vw.Workers() {
			brute += vw.Worker(wid).BruteSearches.Load()
		}
		rep.AddRow(fmt.Sprint(workers), fmtQPS(timing.QPS),
			fmt.Sprintf("%.2fx", timing.QPS/baseQPS), fmt.Sprint(brute))
	}
	return rep, nil
}

// runFig19 reproduces Figure 19: hybrid-query QPS per worker as a
// function of the live segment count. A write-heavy workload
// fragments the table into many small segments; compaction merges
// them back, and QPS recovers — the paper's argument for running
// compaction in its own dedicated VW.
func runFig19(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{ID: "fig19", Title: "Impact of the number of segments on per-worker QPS",
		Headers: []string{"segments", "QPS"}}
	rep.Note("paper Fig 19: QPS decreases as segment count grows; compaction keeps the count converged")
	ds := dataset.Generate(dataset.Spec{Name: "fig19", N: cfg.n(8000), Dim: 96, Queries: cfg.Queries, Seed: cfg.Seed})
	n := ds.Vectors.Rows()
	// Ingest in many small batches — the extremely-high-write-rate
	// state — yielding ~32 small segments.
	s := bh.New(bh.Config{TableName: "t", SegmentRows: n/32 + 1, Seed: cfg.Seed, M: 12, EfConstr: 120}, storage.NewMemStore())
	if err := s.Load(ds.Vectors.Data, ds.Spec.Dim, seqAttrs(n)); err != nil {
		return nil, err
	}
	params := index.SearchParams{Ef: 64}
	measure := func() (float64, error) {
		// Warm query absorbs index (re)loads after each compaction step.
		if _, err := s.Search(ds.Queries.Row(0), 10, 0, int64(n)-1, params); err != nil {
			return 0, err
		}
		t, err := MeasureSerial(ds.Queries.Rows(), func(qi int) error {
			_, err := s.Search(ds.Queries.Row(qi), 10, 0, int64(n)-1, params)
			return err
		})
		return t.QPS, err
	}
	// Measure, then compact in steps, re-measuring at each bin.
	tab := s.Table()
	prevSegs := -1
	for {
		segs := tab.SegmentCount()
		if segs == prevSegs {
			break
		}
		prevSegs = segs
		qps, err := measure()
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprint(segs), fmtQPS(qps))
		if segs <= 1 {
			break
		}
		// Merge roughly a third of the rows per step so the curve has
		// several segment-count bins.
		if _, err := tab.CompactOnce(lsm.CompactionPolicy{MinSegments: 2, MaxMergeRows: n/3 + 1}); err != nil {
			return nil, err
		}
		s.Executor().InvalidateLocalIndexes()
	}
	return rep, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
