package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blendhouse/internal/obs"
	"blendhouse/internal/storage"
)

// This file is the intra-query parallelism engine (paper §III-IV: a
// hybrid query fans out over many immutable segments). Per-segment
// work runs on a bounded pool of goroutines sized by the effective
// parallelism; results are gathered either positionally (scalar scans,
// assembly) or through per-goroutine top-k heaps merged at the barrier
// (vector scans). Both gathers are deterministic: positional results
// keep segment order, and heap merges are re-sorted by the full
// (dist, segment, offset) order, so a query returns byte-identical
// results at any parallelism degree.

// parallelism resolves the effective fan-out degree: per-query
// override, then the executor default, then GOMAXPROCS.
func (e *Executor) parallelism(override int) int {
	p := override
	if p <= 0 {
		p = e.MaxParallelism
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Parallelism exposes the effective fan-out degree (0 = default) for
// EXPLAIN and diagnostics.
func (e *Executor) Parallelism(override int) int { return e.parallelism(override) }

// poolRun executes fn(i) for every i in [0,n) on at most par
// goroutines, cancelling remaining work on the first error. When two
// goroutines fail concurrently the error of the lowest index wins, so
// failures are reported deterministically. It always waits for all
// spawned goroutines before returning — a cancelled query never leaks
// workers.
func poolRun(ctx context.Context, n, par int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = -1
		poolErr error
	)
	fail := func(i int, err error) {
		// A cancellation observed while the parent context is still
		// alive is a side-effect of our own cancel() after an earlier
		// failure — never let it mask the root cause.
		induced := ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if !induced {
			mu.Lock()
			if errIdx < 0 || i < errIdx {
				errIdx, poolErr = i, err
			}
			mu.Unlock()
		}
		cancel()
	}
	wg.Add(par)
	for g := 0; g < par; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := gctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(gctx, i); err != nil {
					fail(i, err)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if poolErr == nil && int(done.Load()) < n {
		// Everything that failed was an induced cancellation, but work
		// is incomplete — the parent context must have fired.
		poolErr = ctx.Err()
	}
	return poolErr
}

// gatherSegments runs fn over each segment concurrently and returns
// the per-segment results in input order — the positional gather used
// where downstream code depends on segment order (scalar scans,
// pre-filter bitsets, assembly).
func gatherSegments[T any](ctx context.Context, metas []*storage.SegmentMeta, par int, fn func(ctx context.Context, i int, m *storage.SegmentMeta) (T, error)) ([]T, error) {
	out := make([]T, len(metas))
	err := poolRun(ctx, len(metas), par, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i, metas[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanSegments runs a hit-producing scan over each segment on the
// worker pool. Each scan emits hits through a callback bound to its
// goroutine's bounded top-k heap (k <= 0 keeps everything, for range
// scans) — hits never materialize as a per-segment slice, which is
// what lets the scans run on pooled scratch buffers. The heaps are
// concatenated at the barrier and the caller re-sorts with the full
// deterministic order. Every segment gets its own child span under sp,
// created inside its goroutine, so EXPLAIN ANALYZE keeps working under
// concurrency; sp is annotated with the parallelism degree and the
// per-segment wall overlap (sum of segment spans / elapsed wall).
func (e *Executor) scanSegments(ctx context.Context, metas []*storage.SegmentMeta, k, par int, sp *obs.Span, fn func(ctx context.Context, m *storage.SegmentMeta, ssp *obs.Span, emit func(hit)) error) ([]hit, error) {
	if par > len(metas) {
		par = len(metas)
	}
	if par < 1 {
		par = 1
	}
	start := obs.Now()
	heaps := make([]hitHeap, par)
	var segWall atomic.Int64
	slot := make(chan int, par)
	for g := 0; g < par; g++ {
		slot <- g
	}
	err := poolRun(ctx, len(metas), par, func(ctx context.Context, i int) error {
		g := <-slot
		defer func() { slot <- g }()
		m := metas[i]
		emit := func(h hit) { heaps[g].push(h, k) }
		ssp := sp.Child("segment " + m.Name)
		segStart := obs.Now()
		err := fn(ctx, m, ssp, emit)
		ssp.End()
		segWall.Add(int64(ssp.Duration()))
		if e.Stats != nil {
			e.Stats.SegLatency.Observe(time.Since(segStart).Seconds())
		}
		return err
	})
	if sp != nil {
		sp.SetInt("parallelism", int64(par))
		if wall := time.Since(start); wall > 0 && len(metas) > 1 {
			sp.SetFloat("wall_overlap", float64(segWall.Load())/float64(wall))
		}
	}
	if err != nil {
		return nil, err
	}
	var all []hit
	for g := range heaps {
		all = append(all, heaps[g].hits...)
	}
	return all, nil
}

// hitWorse reports whether a ranks strictly after b in the
// deterministic result order: greater distance first, ties broken by
// segment name then row offset. This is the same total order sortHits
// uses, which is what keeps parallel merges byte-identical to
// sequential execution.
func hitWorse(a, b hit) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	if a.meta.Name != b.meta.Name {
		return a.meta.Name > b.meta.Name
	}
	return a.offset > b.offset
}

// hitHeap is a bounded top-k accumulator: a binary max-heap under
// hitWorse (worst kept hit at the root), so a full heap evicts exactly
// the globally worst element and the surviving k are identical to what
// a full sort-and-truncate would keep.
type hitHeap struct {
	hits []hit
}

// push inserts h, evicting the worst element when the heap already
// holds cap hits. cap <= 0 means unbounded.
func (hp *hitHeap) push(h hit, cap int) {
	if cap > 0 && len(hp.hits) >= cap {
		if !hitWorse(hp.hits[0], h) {
			return // h is no better than the current worst
		}
		hp.hits[0] = h
		hp.siftDown(0)
		return
	}
	hp.hits = append(hp.hits, h)
	hp.siftUp(len(hp.hits) - 1)
}

func (hp *hitHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !hitWorse(hp.hits[i], hp.hits[parent]) {
			return
		}
		hp.hits[i], hp.hits[parent] = hp.hits[parent], hp.hits[i]
		i = parent
	}
}

func (hp *hitHeap) siftDown(i int) {
	n := len(hp.hits)
	for {
		worst := i
		if l := 2*i + 1; l < n && hitWorse(hp.hits[l], hp.hits[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && hitWorse(hp.hits[r], hp.hits[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		hp.hits[i], hp.hits[worst] = hp.hits[worst], hp.hits[i]
		i = worst
	}
}
