package vec

import "math"

// Blocked distance kernels: every brute-force scan path (flat index,
// exec plan A, IVF coarse probe, k-means assignment, PQ table build)
// computes distances from ONE query to MANY contiguous rows, so the
// kernels here process rows in pairs that share the query-element
// loads, with exact reslicing for bounds-check elimination. Each row
// keeps the same 4-accumulator lane pattern as the scalar kernels in
// vec.go, which makes the results bitwise identical to a per-row
// L2Squared/Dot/CosineDistance loop — callers can adopt the blocked
// kernels without changing a single query result.
//
// The *Threshold variants additionally abandon rows early: squared-L2
// partial sums only accumulate non-negative terms, so once a row's
// partial exceeds the caller's threshold (the current top-k worst, or
// a range radius) its final distance cannot be accepted and the rest
// of the dimensions are skipped. Abandoned entries hold their partial
// sum, which is guaranteed > thr, so a (Dist, ID)-ordered top-k heap
// rejects them; rows that are not abandoned run the full identical
// loop and stay bitwise exact.

// abandonStride is the number of dimensions between threshold checks
// in the early-abandoning L2 kernels. Small enough to cut most of a
// 96-dim row once the heap is warm, large enough that the compare is
// amortized over four unrolled iterations.
const abandonStride = 16

// L2SquaredBatch computes out[r] = L2Squared(q, data[r*dim:(r+1)*dim])
// for every r in [0, len(out)). Results are bitwise identical to the
// per-row scalar kernel.
func L2SquaredBatch(q, data []float32, dim int, out []float32) {
	rows := len(out)
	r := 0
	for ; r+2 <= rows; r += 2 {
		l2Pair(q, data[r*dim:(r+1)*dim], data[(r+1)*dim:(r+2)*dim], out[r:r+2:r+2])
	}
	if r < rows {
		out[r] = L2Squared(q, data[r*dim:r*dim+dim])
	}
}

// l2Pair computes squared L2 from q to rows x and y in one pass,
// sharing the query loads. Per-row accumulation matches L2Squared.
func l2Pair(q, x, y []float32, out []float32) {
	n := len(q)
	x = x[:n]
	y = y[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		dx0 := q0 - x[i]
		dx1 := q1 - x[i+1]
		dx2 := q2 - x[i+2]
		dx3 := q3 - x[i+3]
		a0 += dx0 * dx0
		a1 += dx1 * dx1
		a2 += dx2 * dx2
		a3 += dx3 * dx3
		dy0 := q0 - y[i]
		dy1 := q1 - y[i+1]
		dy2 := q2 - y[i+2]
		dy3 := q3 - y[i+3]
		b0 += dy0 * dy0
		b1 += dy1 * dy1
		b2 += dy2 * dy2
		b3 += dy3 * dy3
	}
	for ; i < n; i++ {
		qv := q[i]
		dx := qv - x[i]
		a0 += dx * dx
		dy := qv - y[i]
		b0 += dy * dy
	}
	out[0] = a0 + a1 + a2 + a3
	out[1] = b0 + b1 + b2 + b3
}

// L2SquaredBatchThreshold is L2SquaredBatch with early abandonment:
// a row whose partial sum exceeds thr may be left holding that partial
// (still strictly > thr) instead of its full distance. Rows that are
// not abandoned are bitwise identical to L2Squared. Pass
// math.MaxFloat32 to disable abandonment.
func L2SquaredBatchThreshold(q, data []float32, dim int, out []float32, thr float32) {
	rows := len(out)
	r := 0
	for ; r+2 <= rows; r += 2 {
		l2PairThreshold(q, data[r*dim:(r+1)*dim], data[(r+1)*dim:(r+2)*dim], out[r:r+2:r+2], thr)
	}
	if r < rows {
		out[r] = L2SquaredThreshold(q, data[r*dim:r*dim+dim], thr)
	}
}

func l2PairThreshold(q, x, y []float32, out []float32, thr float32) {
	n := len(q)
	x = x[:n]
	y = y[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for i+abandonStride <= n {
		lim := i + abandonStride
		for ; i < lim; i += 4 {
			q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
			dx0 := q0 - x[i]
			dx1 := q1 - x[i+1]
			dx2 := q2 - x[i+2]
			dx3 := q3 - x[i+3]
			a0 += dx0 * dx0
			a1 += dx1 * dx1
			a2 += dx2 * dx2
			a3 += dx3 * dx3
			dy0 := q0 - y[i]
			dy1 := q1 - y[i+1]
			dy2 := q2 - y[i+2]
			dy3 := q3 - y[i+3]
			b0 += dy0 * dy0
			b1 += dy1 * dy1
			b2 += dy2 * dy2
			b3 += dy3 * dy3
		}
		// Partial sums are monotone under float addition of
		// non-negative terms, so a partial > thr bounds the final
		// distance from below. When one row of the pair is out, the
		// survivor continues alone — its accumulators carry over, so
		// the op sequence (and result) stays bitwise identical to the
		// full pair loop.
		aOut := a0+a1+a2+a3 > thr
		bOut := b0+b1+b2+b3 > thr
		if aOut || bOut {
			if aOut && bOut {
				out[0] = a0 + a1 + a2 + a3
				out[1] = b0 + b1 + b2 + b3
				return
			}
			if aOut {
				out[0] = a0 + a1 + a2 + a3
				out[1] = l2Resume(q, y, i, b0, b1, b2, b3, thr)
				return
			}
			out[1] = b0 + b1 + b2 + b3
			out[0] = l2Resume(q, x, i, a0, a1, a2, a3, thr)
			return
		}
	}
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		dx0 := q0 - x[i]
		dx1 := q1 - x[i+1]
		dx2 := q2 - x[i+2]
		dx3 := q3 - x[i+3]
		a0 += dx0 * dx0
		a1 += dx1 * dx1
		a2 += dx2 * dx2
		a3 += dx3 * dx3
		dy0 := q0 - y[i]
		dy1 := q1 - y[i+1]
		dy2 := q2 - y[i+2]
		dy3 := q3 - y[i+3]
		b0 += dy0 * dy0
		b1 += dy1 * dy1
		b2 += dy2 * dy2
		b3 += dy3 * dy3
	}
	for ; i < n; i++ {
		qv := q[i]
		dx := qv - x[i]
		a0 += dx * dx
		dy := qv - y[i]
		b0 += dy * dy
	}
	out[0] = a0 + a1 + a2 + a3
	out[1] = b0 + b1 + b2 + b3
}

// l2Resume continues one row of an l2PairThreshold call from
// dimension i after its partner abandoned, inheriting the pair
// kernel's live accumulators. The op sequence on s0..s3 is exactly
// what the pair loop would have executed for this row, so a row that
// is never abandoned stays bitwise identical to L2Squared.
func l2Resume(q, x []float32, i int, s0, s1, s2, s3, thr float32) float32 {
	n := len(q)
	x = x[:n]
	for i+abandonStride <= n {
		lim := i + abandonStride
		for ; i < lim; i += 4 {
			d0 := q[i] - x[i]
			d1 := q[i+1] - x[i+1]
			d2 := q[i+2] - x[i+2]
			d3 := q[i+3] - x[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s := s0 + s1 + s2 + s3; s > thr {
			return s
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := q[i] - x[i]
		d1 := q[i+1] - x[i+1]
		d2 := q[i+2] - x[i+2]
		d3 := q[i+3] - x[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := q[i] - x[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2SquaredThreshold is the single-row early-abandoning kernel, used
// by filtered scans that cannot process contiguous pairs. The returned
// value is the exact L2Squared(a, b) unless it exceeds thr, in which
// case it may be a partial sum that is still strictly > thr.
func L2SquaredThreshold(a, b []float32, thr float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for i+abandonStride <= n {
		lim := i + abandonStride
		for ; i < lim; i += 4 {
			d0 := a[i] - b[i]
			d1 := a[i+1] - b[i+1]
			d2 := a[i+2] - b[i+2]
			d3 := a[i+3] - b[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s := s0 + s1 + s2 + s3; s > thr {
			return s
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// DotBatch computes out[r] = Dot(q, data[r*dim:(r+1)*dim]) for every
// r in [0, len(out)), bitwise identical to the scalar kernel.
func DotBatch(q, data []float32, dim int, out []float32) {
	rows := len(out)
	r := 0
	for ; r+2 <= rows; r += 2 {
		dotPair(q, data[r*dim:(r+1)*dim], data[(r+1)*dim:(r+2)*dim], out[r:r+2:r+2])
	}
	if r < rows {
		out[r] = Dot(q, data[r*dim:r*dim+dim])
	}
}

func dotPair(q, x, y []float32, out []float32) {
	n := len(q)
	x = x[:n]
	y = y[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
		a0 += q0 * x[i]
		a1 += q1 * x[i+1]
		a2 += q2 * x[i+2]
		a3 += q3 * x[i+3]
		b0 += q0 * y[i]
		b1 += q1 * y[i+1]
		b2 += q2 * y[i+2]
		b3 += q3 * y[i+3]
	}
	for ; i < n; i++ {
		qv := q[i]
		a0 += qv * x[i]
		b0 += qv * y[i]
	}
	out[0] = a0 + a1 + a2 + a3
	out[1] = b0 + b1 + b2 + b3
}

// dotNorm computes Dot(a, b) and Dot(b, b) in one pass over b, each
// bitwise identical to the scalar Dot kernel.
func dotNorm(a, b []float32) (dot, norm float32) {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	var t0, t1, t2, t3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, b1, b2, b3 := b[i], b[i+1], b[i+2], b[i+3]
		s0 += a[i] * b0
		s1 += a[i+1] * b1
		s2 += a[i+2] * b2
		s3 += a[i+3] * b3
		t0 += b0 * b0
		t1 += b1 * b1
		t2 += b2 * b2
		t3 += b3 * b3
	}
	for ; i < n; i++ {
		bv := b[i]
		s0 += a[i] * bv
		t0 += bv * bv
	}
	return s0 + s1 + s2 + s3, t0 + t1 + t2 + t3
}

// CosineBatch computes out[r] = CosineDistance(q, row r), computing
// the query norm once per call and fusing each row's dot product and
// norm into a single pass — bitwise identical to the scalar kernel.
func CosineBatch(q, data []float32, dim int, out []float32) {
	na := Dot(q, q)
	for r := range out {
		dot, nb := dotNorm(q, data[r*dim:r*dim+dim])
		if na == 0 || nb == 0 {
			out[r] = 1
			continue
		}
		out[r] = 1 - dot/float32(math.Sqrt(float64(na)*float64(nb)))
	}
}
