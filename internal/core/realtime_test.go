package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"blendhouse/internal/lsm"
	"blendhouse/internal/storage"
	"blendhouse/internal/testutil"
	"blendhouse/internal/vec"
)

// noFlushWAL keeps every row in the memtable until the engine closes,
// so tests can observe the pre-flush state.
func noFlushWAL() *lsm.WALConfig {
	return &lsm.WALConfig{MaxMemRows: 1 << 20, MaxMemBytes: 1 << 40, FlushInterval: time.Hour}
}

// TestWALFreshRowsInTopK: with the real-time write path on, an INSERT
// is query-visible the moment it returns — before any segment or index
// exists — and ranks correctly against indexed segment rows.
func TestWALFreshRowsInTopK(t *testing.T) {
	before := runtime.NumGoroutine()
	e := newEngine(t, Config{WAL: noFlushWAL()})
	ds := seedImages(t, e)
	// Everything acknowledged, nothing flushed.
	tab := e.Table("images")
	if tab.MemRows() != eN || tab.SegmentCount() != 0 {
		t.Fatalf("mem=%d segments=%d, want all %d rows unflushed", tab.MemRows(), tab.SegmentCount(), eN)
	}
	q := ds.Queries.Row(0)
	res := mustExec(t, e, fmt.Sprintf(
		`SELECT id, dist FROM images ORDER BY L2Distance(embedding, %s) AS dist LIMIT 10`, vecLit(q)))
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	// Memtable scans are exact, so top-10 must equal the oracle.
	truth := ds.GroundTruth(vec.L2, 10, nil)
	want := map[int64]bool{}
	for _, id := range truth[0] {
		want[id] = true
	}
	for _, row := range res.Rows {
		if !want[row[0].(int64)] {
			t.Fatalf("memtable top-10 returned id %d not in exact top-10", row[0])
		}
	}
	// A row inserted right now is immediately rank 1 at distance 0.
	mustExec(t, e, fmt.Sprintf("INSERT INTO images VALUES (9999, 'fresh', 1, 0.5, %s)", vecLit(q)))
	res = mustExec(t, e, fmt.Sprintf(
		`SELECT id, dist FROM images ORDER BY L2Distance(embedding, %s) AS dist LIMIT 1`, vecLit(q)))
	if id := res.Rows[0][0].(int64); id != 9999 {
		t.Fatalf("freshest row not rank 1: got id %d", id)
	}
	if d := res.Rows[0][1].(float64); d != 0 {
		t.Fatalf("exact-match distance = %v, want 0", d)
	}
	// Scalar filters and DELETE see memtable rows too.
	res = mustExec(t, e, "SELECT id FROM images WHERE label = 'fresh' ORDER BY id LIMIT 5")
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 9999 {
		t.Fatalf("scalar query over memtable: %v", res.Rows)
	}
	mustExec(t, e, "DELETE FROM images WHERE id IN (9999)")
	res = mustExec(t, e, fmt.Sprintf(
		`SELECT id FROM images ORDER BY L2Distance(embedding, %s) AS dist LIMIT 1`, vecLit(q)))
	if id := res.Rows[0][0].(int64); id == 9999 {
		t.Fatal("deleted memtable row still in top-k")
	}
	e.Close()
	testutil.CheckNoLeaks(t, before)
}

// TestWALEngineCloseThenReopen: Engine.Close drains every table's
// memtable into segments, so a second engine over the same store
// answers the same query with byte-identical results.
func TestWALEngineCloseThenReopen(t *testing.T) {
	before := runtime.NumGoroutine()
	store := storage.NewMemStore()
	e := newEngine(t, Config{Store: store, WAL: noFlushWAL()})
	ds := seedImages(t, e)
	mustExec(t, e, "DELETE FROM images WHERE id IN (3, 77)")
	q := ds.Queries.Row(1)
	sel := fmt.Sprintf(`SELECT id, dist FROM images ORDER BY L2Distance(embedding, %s) AS dist LIMIT 10`, vecLit(q))
	wantRes := mustExec(t, e, sel)
	e.Close()

	re := newEngine(t, Config{Store: store, WAL: noFlushWAL()})
	tab := re.Table("images")
	if tab == nil {
		t.Fatal("table lost on reopen")
	}
	if tab.MemRows() != 0 || tab.Rows() != eN-2 {
		t.Fatalf("reopened: mem=%d rows=%d, want 0/%d", tab.MemRows(), tab.Rows(), eN-2)
	}
	gotRes, err := re.Exec(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRes.Rows) != len(wantRes.Rows) {
		t.Fatalf("reopened rows = %d, want %d", len(gotRes.Rows), len(wantRes.Rows))
	}
	for i := range wantRes.Rows {
		if gotRes.Rows[i][0] != wantRes.Rows[i][0] || gotRes.Rows[i][1] != wantRes.Rows[i][1] {
			t.Fatalf("row %d differs after reopen: %v vs %v", i, gotRes.Rows[i], wantRes.Rows[i])
		}
	}
	re.Close()
	testutil.CheckNoLeaks(t, before)
}
