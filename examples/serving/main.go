// Serving: talk to a running `blendhouse serve` instance through the
// Go client — create a table, load vectors, tune the session, and run
// a hybrid query over the wire.
//
// Start a server first (any directory works; the example cleans up
// its own table):
//
//	blendhouse serve -data ./bhdata -addr 127.0.0.1:8428
//
// then:
//
//	go run ./examples/serving                       # default addr
//	go run ./examples/serving -addr 127.0.0.1:9000  # elsewhere
//
// The client retries shed (429) and draining (503) responses with
// jittered backoff automatically — run it against a saturated server
// and it degrades to queueing, not errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"blendhouse/pkg/client"
)

const dim = 8

func main() {
	addr := flag.String("addr", "127.0.0.1:8428", "blendhouse serve address")
	flag.Parse()

	c, err := client.New(client.Config{BaseURL: "http://" + *addr})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// DDL and ingest go through /v1/exec. Exec retries only failures
	// the server promises never ran, so this cannot double-create.
	// (The dialect has no IF EXISTS; ignore "does not exist".)
	_, _ = c.Exec(ctx, `DROP TABLE serving_demo`)
	mustExec(ctx, c, fmt.Sprintf(`
		CREATE TABLE serving_demo (
			id UInt64,
			topic String,
			embedding Array(Float32),
			INDEX ann_idx embedding TYPE HNSW('DIM=%d','M=16')
		)`, dim))

	rng := rand.New(rand.NewSource(1))
	topics := []string{"sports", "science", "politics"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO serving_demo VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, '%s', %s)", i, topics[i%len(topics)], vecLit(randVec(rng)))
	}
	mustExec(ctx, c, sb.String())

	// Session variables stick to the client's pooled connection.
	if err := c.Set(ctx, "statement_timeout", "2000"); err != nil {
		log.Fatal(err)
	}

	// A hybrid query with a per-statement parallelism override.
	query := fmt.Sprintf(`SELECT id, topic, dist FROM serving_demo
		WHERE topic = 'science'
		ORDER BY L2Distance(embedding, %s) AS dist LIMIT 5`, vecLit(randVec(rng)))
	start := time.Now()
	res, err := c.Query(ctx, query, client.WithMaxParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d science articles (%.1f ms server, %.1f ms round trip):\n",
		len(res.Rows), res.ElapsedMS, float64(time.Since(start).Microseconds())/1000)
	for _, row := range res.Rows {
		fmt.Printf("  id=%-4v topic=%-8v dist=%v\n", row[0], row[1], row[2])
	}

	// The same result as an NDJSON stream — constant client memory no
	// matter the result size.
	st, err := c.QueryStream(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		if _, err := st.Next(); err != nil {
			break
		}
		n++
	}
	st.Close()
	fmt.Printf("streamed the same result: %d rows\n", n)

	mustExec(ctx, c, `DROP TABLE serving_demo`)
	fmt.Println("ok")
}

func mustExec(ctx context.Context, c *client.Client, stmt string) {
	if _, err := c.Exec(ctx, stmt); err != nil {
		log.Fatal(err)
	}
}

func randVec(rng *rand.Rand) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = rng.Float32()
	}
	return v
}

func vecLit(v []float32) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = fmt.Sprintf("%g", f)
	}
	return "[" + strings.Join(parts, ",") + "]"
}
