package server

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"blendhouse/internal/core"
)

// TestStatusMappingExhaustive walks core.Taxonomy() — the engine's own
// list of failure classes — and asserts every sentinel maps to a
// distinct, non-500 status with a non-INTERNAL code. Adding a sentinel
// to the taxonomy without teaching StatusFor about it fails here.
func TestStatusMappingExhaustive(t *testing.T) {
	seenStatus := map[int]error{}
	seenCode := map[string]error{}
	for _, sentinel := range core.Taxonomy() {
		// Wrapped the way real errors arrive (fmt.Errorf %w chains).
		err := fmt.Errorf("outer: %w", fmt.Errorf("core: %w (cause)", sentinel))
		status, code := StatusFor(err)
		if status == http.StatusInternalServerError || code == CodeInternal {
			t.Errorf("taxonomy sentinel %v unmapped: got %d %s", sentinel, status, code)
			continue
		}
		if prev, dup := seenStatus[status]; dup {
			t.Errorf("status %d shared by %v and %v", status, prev, sentinel)
		}
		if prev, dup := seenCode[code]; dup {
			t.Errorf("code %s shared by %v and %v", code, prev, sentinel)
		}
		seenStatus[status] = sentinel
		seenCode[code] = sentinel
	}
}

func TestStatusMappingServingErrors(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{fmt.Errorf("x: %w", ErrShed), http.StatusTooManyRequests, CodeShed},
		{fmt.Errorf("x: %w", ErrDraining), http.StatusServiceUnavailable, CodeDraining},
		{core.ErrTimeout, http.StatusGatewayTimeout, CodeTimeout},
		{core.ErrCanceled, StatusClientClosedRequest, CodeCanceled},
		{core.ErrUnknownTable, http.StatusNotFound, CodeUnknownTable},
		{core.ErrPlan, http.StatusBadRequest, CodePlan},
		{errors.New("disk on fire"), http.StatusInternalServerError, CodeInternal},
	}
	for _, c := range cases {
		status, code := StatusFor(c.err)
		if status != c.wantStatus || code != c.wantCode {
			t.Errorf("StatusFor(%v) = %d %s, want %d %s", c.err, status, code, c.wantStatus, c.wantCode)
		}
	}
}

// TestRetryableContract pins which codes promise the statement never
// executed — the contract pkg/client's retry policy relies on.
func TestRetryableContract(t *testing.T) {
	retryable := map[string]bool{
		CodeShed:     true,
		CodeDraining: true,
	}
	all := []string{CodeTimeout, CodeCanceled, CodeUnknownTable, CodePlan,
		CodeShed, CodeDraining, CodeBadRequest, CodeSession, CodeInternal}
	for _, code := range all {
		if got := Retryable(code); got != retryable[code] {
			t.Errorf("Retryable(%s) = %v, want %v", code, got, retryable[code])
		}
	}
}
