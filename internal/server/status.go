package server

import (
	"errors"
	"net/http"

	"blendhouse/internal/core"
	"blendhouse/pkg/api"
)

// ErrDraining is returned to statements arriving after graceful drain
// began. Like ErrShed it is safe to retry — the statement never
// started — but against a different replica: this one is going away.
var ErrDraining = errors.New("server: draining, not accepting statements")

// ErrUnavailable is the coordinator's "coverage lost" failure: enough
// shards are unreachable that the result would silently miss rows, and
// the session did not opt into partial results (SET allow_partial =
// on). Defined here (not in internal/coord) so StatusFor can map it
// without the server importing the coordinator.
var ErrUnavailable = errors.New("server: shard coverage lost")

// StatusClientClosedRequest is nginx's non-standard 499 ("client
// closed request"), used when the statement died because the caller's
// context was canceled — no standard 4xx says that, and 5xx would
// wrongly blame the server.
const StatusClientClosedRequest = 499

// Machine-readable error codes carried in ErrorBody.Code. The
// vocabulary is owned by pkg/api (shared with pkg/client and
// internal/coord); these aliases keep server-side call sites short.
const (
	CodeTimeout      = api.CodeTimeout
	CodeCanceled     = api.CodeCanceled
	CodeUnknownTable = api.CodeUnknownTable
	CodePlan         = api.CodePlan
	CodeShed         = api.CodeShed
	CodeDraining     = api.CodeDraining
	CodeBadRequest   = api.CodeBadRequest
	CodeSession      = api.CodeSession
	CodeInternal     = api.CodeInternal
	CodeUnavailable  = api.CodeUnavailable
)

// StatusFor maps an error from the serving path to its HTTP status and
// machine-readable code. The core taxonomy maps exhaustively (tested
// against core.Taxonomy()):
//
//	core.ErrTimeout      → 504 TIMEOUT       (statement deadline fired)
//	core.ErrCanceled     → 499 CANCELED      (caller went away)
//	core.ErrUnknownTable → 404 UNKNOWN_TABLE
//	core.ErrPlan         → 400 PLAN          (parse/plan/validation)
//	ErrShed              → 429 SHED          (admission queue full/timeout)
//	ErrDraining          → 503 DRAINING      (graceful shutdown under way)
//	ErrUnavailable       → 502 UNAVAILABLE   (coordinator lost shard coverage)
//	anything else        → 500 INTERNAL
func StatusFor(err error) (status int, code string) {
	switch {
	case errors.Is(err, core.ErrTimeout):
		return http.StatusGatewayTimeout, CodeTimeout
	case errors.Is(err, core.ErrCanceled):
		return StatusClientClosedRequest, CodeCanceled
	case errors.Is(err, core.ErrUnknownTable):
		return http.StatusNotFound, CodeUnknownTable
	case errors.Is(err, core.ErrPlan):
		return http.StatusBadRequest, CodePlan
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests, CodeShed
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrUnavailable):
		return http.StatusBadGateway, CodeUnavailable
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// Retryable reports whether an error code promises the statement was
// never executed, making a retry safe even for DML. This is the
// server-side contract pkg/client's retry policy leans on.
func Retryable(code string) bool {
	return api.Retryable(code)
}
